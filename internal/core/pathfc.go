package core

import (
	"math"
	"strconv"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/sets"
)

// This file is the indexed path-mode searcher: PathEmbed rebuilt on the
// engine stack the one-to-one algorithms already ride. The chronological
// searcher (pathmap.go, kept as the oracle behind Engine=SearchChrono)
// pays an exhaustive simple-path DFS for every (candidate, assigned
// neighbor) pair it probes, and scans every host node at every depth.
// This engine removes that work in three layers:
//
//   - Reachability-pruned domains. A hop-bounded reachability oracle
//     (per-k adj^k bitset rows, served by internal/index and cached
//     across runs when PathOptions.Index is set) replaces the 1-hop
//     filter rows of the FC engine: assigning a query node AND-prunes
//     the live domains of its unassigned query neighbors with the
//     ≤MaxHops reachability row of the chosen host — one word-parallel
//     op per neighbor, wiping out provably unextendable assignments
//     before descending. Domains ride the same trail machinery
//     (domains/fcTrailEntry) LNS and Consolidate share with fc.go.
//
//   - Optimistic metric bounds. For additive metrics with an upper
//     window (the delay case), a lazily-computed single-source shortest
//     distance — edge costs clamped at ≥ 0, so it lower-bounds every
//     path's true composed value regardless of hop limits — rejects a
//     witness probe whose best possible composed value already violates
//     the window, without starting the DFS.
//
//   - Witness memoization. Within a run, witness lookups are memoized
//     per (query-edge window class, src, dst): query edges carrying
//     identical window attributes share one cache line, so a ring query
//     with uniform windows pays each host pair's DFS once, not once per
//     edge and once per enumeration visit.
//
// Every pruning layer is a necessary condition on witness existence, so
// the engine enumerates exactly the chronological searcher's solution
// sequence — pinned by the property tests in pathfc_test.go.

// pathWitKey addresses one memoized witness lookup: the query edge's
// window class plus the host pair.
type pathWitKey struct {
	class    int32
	src, dst graph.NodeID
}

// pathWitVal is a memoized witness answer. ok=false records a proven
// absence (never a stop-truncated probe, which is not memoized).
type pathWitVal struct {
	path graph.Path
	ok   bool
}

// pathChosen pairs a query edge with the witness found for it while a
// candidate is probed.
type pathChosen struct {
	edge graph.EdgeID
	path graph.Path
}

// pathFC is the state of one indexed path-mode search.
type pathFC struct {
	p   *Problem
	opt PathOptions

	nq, nr int
	order  []graph.NodeID

	// reachF[r] = hosts with a ≤MaxHops path from r; reachR[r] = hosts
	// with a ≤MaxHops path to r (aliases reachF on undirected hosts).
	reachF, reachR []sets.Bitset

	ds       *domains
	used     *sets.Bitset
	candBits *sets.Bitset
	scratch  [][]int32

	assign  Mapping
	paths   map[graph.EdgeID]graph.Path
	classOf []int32
	memo    map[pathWitKey]pathWitVal
	bounds  *pathBounds

	stopClock
	stopped bool
	res     *PathResult
}

func pathEmbedFC(p *Problem, opt PathOptions) *PathResult {
	start := time.Now()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	s := &pathFC{
		p:        p,
		opt:      opt,
		nq:       nq,
		nr:       nr,
		order:    pathOrder(p.Query),
		used:     sets.NewBitset(nr),
		candBits: sets.NewBitset(nr),
		assign:   make(Mapping, nq),
		paths:    make(map[graph.EdgeID]graph.Path, p.Query.NumEdges()),
		classOf:  pathWindowClasses(p.Query, opt.Metrics),
		memo:     make(map[pathWitKey]pathWitVal),
		bounds:   newPathBounds(p.Host, opt.Metrics),
		scratch:  make([][]int32, nq),
		res:      &PathResult{},
	}
	s.arm(start, opt.Timeout, opt.Stop)
	for i := range s.assign {
		s.assign[i] = -1
	}

	// Reachability rows: served from the index snapshot when it matches
	// the host (cached there across runs and invalidated by structural
	// deltas), computed per run otherwise.
	if ix := opt.Index; ix != nil && ix.NumNodes() == nr && ix.Directed() == p.Host.Directed() {
		s.reachF = ix.ReachWithin(opt.MaxHops)
		if p.Host.Directed() {
			s.reachR = ix.ReachWithinRev(opt.MaxHops)
		} else {
			s.reachR = s.reachF
		}
	} else {
		s.reachF, s.reachR = index.BuildReach(p.Host, opt.MaxHops)
	}

	// Base domains: the node constraint is the only sound per-node
	// filter in path mode — the degree filter of the one-to-one engines
	// does not apply, since several witness paths may leave a host node
	// through the same hosting edge.
	s.ds = newDomains(nr, nq)
	for q := 0; q < nq; q++ {
		cnt := int32(0)
		for r := 0; r < nr; r++ {
			if p.nodeOK(graph.NodeID(q), graph.NodeID(r)) {
				s.ds.dom[q].Set(int32(r))
				cnt++
			}
		}
		s.ds.count[q] = cnt
	}

	s.rec(0)

	s.res.Exhausted = !s.timedOut && !s.stopped
	s.res.Status = classify(s.res.Exhausted, len(s.res.Solutions))
	s.res.Elapsed = time.Since(start)
	s.res.Stats.Elapsed = s.res.Elapsed
	return s.res
}

func (s *pathFC) record() {
	sol := PathSolution{Nodes: s.assign.Clone(), Paths: make(map[graph.EdgeID]graph.Path, len(s.paths))}
	for k, v := range s.paths {
		sol.Paths[k] = v
	}
	s.res.Solutions = append(s.res.Solutions, sol)
	if s.opt.MaxSolutions > 0 && len(s.res.Solutions) >= s.opt.MaxSolutions {
		s.stopped = true
	}
}

func (s *pathFC) rec(d int) {
	if s.timedOut || s.stopped {
		return
	}
	if d == s.nq {
		s.record()
		return
	}
	q := s.order[d]
	buf := s.scratch[d][:0]
	s.candBits.CopyFrom(&s.ds.dom[q])
	if s.candBits.AndNotWith(s.used) {
		buf = s.candBits.AppendTo(buf)
	}
	s.scratch[d] = buf
	for _, r32 := range buf {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.res.Stats.NodesVisited++
		r := graph.NodeID(r32)
		witnesses, ok := s.witnessesFor(q, r)
		if !ok {
			continue
		}
		s.assign[q] = r
		s.used.Set(r32)
		for _, w := range witnesses {
			s.paths[w.edge] = w.path
		}
		mark, amark := s.ds.mark()
		if s.pruneFuture(q, r32) {
			s.rec(d + 1)
		} else {
			s.res.Stats.Wipeouts++
		}
		s.ds.undoTo(mark, amark)
		for _, w := range witnesses {
			delete(s.paths, w.edge)
		}
		s.used.Clear(r32)
		s.assign[q] = -1
	}
}

// witnessesFor checks that every query edge from q to an already-assigned
// neighbor has a witness when q is placed at r, collecting the witnesses.
// The visit order matches the chronological searcher's so the two engines
// enumerate identical sequences.
func (s *pathFC) witnessesFor(q, r graph.NodeID) ([]pathChosen, bool) {
	var witnesses []pathChosen
	ok := true
	visit := func(a graph.Arc, qeFromQ bool) {
		if !ok || s.assign[a.To] < 0 {
			return
		}
		rs, rt := r, s.assign[a.To]
		if !qeFromQ {
			rs, rt = s.assign[a.To], r
		}
		if path, found := s.witness(a.Edge, rs, rt); found {
			witnesses = append(witnesses, pathChosen{a.Edge, path})
		} else {
			ok = false
		}
	}
	for _, a := range s.p.Query.Arcs(q) {
		visit(a, s.p.Query.Edge(a.Edge).From == q)
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			visit(a, false)
		}
	}
	return witnesses, ok
}

// witness answers one (query edge, host pair) lookup through the pruning
// stack: reachability, memo, optimistic bounds, then — only if all three
// pass — the bounded simple-path DFS.
func (s *pathFC) witness(eid graph.EdgeID, rs, rt graph.NodeID) (graph.Path, bool) {
	if !s.reachF[rs].Has(int32(rt)) {
		s.res.Stats.ReachPrunes++
		return graph.Path{}, false
	}
	qe := s.p.Query.Edge(eid)
	key := pathWitKey{class: s.classOf[eid], src: rs, dst: rt}
	if v, hit := s.memo[key]; hit {
		s.res.Stats.WitnessHits++
		return v.path, v.ok
	}
	if !s.bounds.feasible(qe, rs, rt) {
		s.res.Stats.ReachPrunes++
		s.memo[key] = pathWitVal{} // a bound violation is a proven absence
		return graph.Path{}, false
	}

	s.res.Stats.WitnessProbes++
	var found graph.Path
	ok := false
	s.p.Host.PathsWithinStop(rs, rt, s.opt.MaxHops, s.checkDeadline, func(path graph.Path) bool {
		if !pathMetricsOK(s.p.Host, qe, path.Edges, s.opt.Metrics) {
			return true
		}
		path.Cost, _ = s.opt.Metrics[0].composeAlong(s.p.Host, path.Edges)
		found, ok = path, true
		return false // first witness suffices
	})
	if ok || !s.timedOut {
		// Positive answers are always valid; negatives only when the DFS
		// ran to completion — a stop-truncated probe proves nothing and
		// must not poison the memo.
		s.memo[key] = pathWitVal{path: found, ok: ok}
	}
	if !ok && !s.timedOut {
		// A completed-but-fruitless DFS is the signal the per-source
		// distance bound amortizes against; see pathBounds.
		s.bounds.noteFailure(rs)
	}
	return found, ok
}

// pruneFuture propagates the assignment q ↦ r into the live domains of
// q's unassigned query neighbors: a neighbor's image must lie within
// MaxHops of r in the witness direction. Reports false on a wipeout; the
// caller undoes through its trail mark.
func (s *pathFC) pruneFuture(q graph.NodeID, r int32) bool {
	prune := func(a graph.Arc, qeFromQ bool) bool {
		if s.assign[a.To] >= 0 {
			return true
		}
		row := &s.reachF[r]
		if !qeFromQ {
			row = &s.reachR[r]
		}
		s.res.Stats.PruneOps++
		return s.ds.intersect(a.To, row) != 0
	}
	for _, a := range s.p.Query.Arcs(q) {
		if !prune(a, s.p.Query.Edge(a.Edge).From == q) {
			return false
		}
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			if !prune(a, false) {
				return false
			}
		}
	}
	return true
}

// pathWindowClasses groups query edges by their window-attribute values
// under the run's metric specs: edges whose windows are byte-identical
// share a witness memo class. Attributes outside the specs cannot affect
// witness acceptance, so the grouping is sound.
func pathWindowClasses(q *graph.Graph, specs []MetricSpec) []int32 {
	classes := map[string]int32{}
	out := make([]int32, q.NumEdges())
	var b []byte
	for i := 0; i < q.NumEdges(); i++ {
		qe := q.Edge(graph.EdgeID(i))
		b = b[:0]
		for _, spec := range specs {
			if spec.LoAttr != "" {
				if lo, ok := qe.Attrs.Float(spec.LoAttr); ok {
					b = append(b, 'L')
					b = strconv.AppendUint(b, math.Float64bits(lo), 16)
				}
			}
			if spec.HiAttr != "" {
				if hi, ok := qe.Attrs.Float(spec.HiAttr); ok {
					b = append(b, 'H')
					b = strconv.AppendUint(b, math.Float64bits(hi), 16)
				}
			}
			b = append(b, ';')
		}
		key := string(b)
		id, ok := classes[key]
		if !ok {
			id = int32(len(classes))
			classes[key] = id
		}
		out[i] = id
	}
	return out
}

// pathBounds holds the lazily-computed optimistic bounds for additive
// specs with an upper window attribute (the delay case), in two tiers:
//
//   - A global floor: the cheapest clamped edge value. Any witness has
//     at least one edge, so floor > hi rejects a pair in O(1). Computed
//     once per spec on first use.
//   - Per-source shortest distances under edge costs clamped at ≥ 0. The
//     clamped Dijkstra distance lower-bounds the true composed value of
//     *every* rs→rt path (hop-limited or not), so distance > hi proves
//     no witness can satisfy the window. A Dijkstra costs about as much
//     as one fruitless DFS on a dense host, so it is computed for a
//     source only after failedBeforeBound completed DFS probes from that
//     source came back empty — sources whose probes succeed never pay
//     for it, sources in an infeasible region pay once and then answer
//     every remaining destination in O(1).
//
// Bottleneck and multiplicative rules fall through to the DFS — a
// widest-path analogue would bound them too, but additive delay is the
// workload the paper's §VIII windows describe.
type pathBounds struct {
	host  *graph.Graph
	specs []MetricSpec
	// dist[si][src] = distance vector from src for additive spec si;
	// absent entries are not yet computed. Non-additive specs (and
	// additive ones without HiAttr) keep a nil map.
	dist []map[graph.NodeID][]float64
	// floor[si] = cheapest clamped edge value for spec si; NaN until
	// computed, +Inf when no edge is usable.
	floor []float64
	// negative[si] records that some edge carries a negative value for
	// spec si. Both bound tiers clamp at zero, which is only a lower
	// bound of the true composed value when no edge is negative — with a
	// negative edge a longer path can compose *below* the clamped
	// distance, so the spec's bounds are disabled entirely and the DFS
	// decides (the oracle equivalence must hold for any attribute
	// values, sensible or not).
	negative []bool
	// failures[src] counts completed-but-fruitless DFS probes from src;
	// crossing failedBeforeBound unlocks the Dijkstra tier for it.
	failures map[graph.NodeID]int
}

// failedBeforeBound is how many fruitless DFS probes a source tolerates
// before the per-source distance bound is computed for it.
const failedBeforeBound = 2

func newPathBounds(host *graph.Graph, specs []MetricSpec) *pathBounds {
	b := &pathBounds{
		host:     host,
		specs:    specs,
		dist:     make([]map[graph.NodeID][]float64, len(specs)),
		floor:    make([]float64, len(specs)),
		negative: make([]bool, len(specs)),
		failures: make(map[graph.NodeID]int),
	}
	for i, spec := range specs {
		b.floor[i] = math.NaN()
		if spec.Rule == Additive && spec.HiAttr != "" {
			b.dist[i] = make(map[graph.NodeID][]float64)
		}
	}
	return b
}

// noteFailure records a completed DFS probe from src that found nothing.
func (b *pathBounds) noteFailure(src graph.NodeID) { b.failures[src]++ }

// feasible reports whether some rs→rt path could still satisfy every
// bounded spec's window for query edge qe. False is a proof of
// infeasibility; true just means the DFS must decide.
func (b *pathBounds) feasible(qe *graph.Edge, rs, rt graph.NodeID) bool {
	for i := range b.specs {
		if b.dist[i] == nil {
			continue
		}
		hi, ok := qe.Attrs.Float(b.specs[i].HiAttr)
		if !ok {
			continue
		}
		floor := b.edgeFloor(i)
		if b.negative[i] {
			continue // clamped bounds are unsound here; the DFS decides
		}
		if floor > hi {
			return false
		}
		if d := b.from(i, rs); d != nil && d[rt] > hi {
			return false
		}
	}
	return true
}

// edgeFloor returns (computing on first use) the cheapest clamped edge
// value for spec si, recording along the way whether any edge is
// negative (which disables the spec's bounds — see the negative field).
func (b *pathBounds) edgeFloor(si int) float64 {
	if !math.IsNaN(b.floor[si]) {
		return b.floor[si]
	}
	spec := b.specs[si]
	floor := math.Inf(1)
	for i := 0; i < b.host.NumEdges(); i++ {
		v, ok := b.host.Edge(graph.EdgeID(i)).Attrs.Float(spec.Attr)
		if !ok {
			if spec.MissingFails {
				continue
			}
			v = spec.MissingEdge
		}
		if v < 0 {
			b.negative[si] = true
			v = 0
		}
		if v < floor {
			floor = v
		}
	}
	b.floor[si] = floor
	return floor
}

// from returns the clamped shortest-distance vector from src for spec
// si, computing it only once src has crossed the failure threshold; nil
// means the bound is not (yet) worth its construction cost.
func (b *pathBounds) from(si int, src graph.NodeID) []float64 {
	if d, ok := b.dist[si][src]; ok {
		return d
	}
	if b.failures[src] < failedBeforeBound {
		return nil
	}
	// graph.Distances clamps negative costs itself, but a spec with any
	// negative edge never reaches here (see the negative field); +Inf
	// marks unusable edges (missing attribute with MissingFails).
	spec := b.specs[si]
	d := b.host.Distances(src, func(e graph.EdgeID) float64 {
		v, ok := b.host.Edge(e).Attrs.Float(spec.Attr)
		if !ok {
			if spec.MissingFails {
				return math.Inf(1)
			}
			v = spec.MissingEdge
		}
		return v
	})
	b.dist[si][src] = d
	return d
}
