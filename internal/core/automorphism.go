package core

import (
	"sort"

	"netembed/internal/graph"
)

// Automorphisms returns every attribute-preserving automorphism of g: a
// bijection of g's nodes onto themselves that preserves adjacency, node
// attribute bags and edge attribute bags exactly.
//
// This powers the symmetry-reduction technique of Considine & Byers
// (related work, §II): regular query topologies (rings, stars, cliques)
// have large automorphism groups, and every automorphism turns one
// feasible embedding into another that occupies the same hosting
// resources. Reporting one representative per orbit keeps result sets
// proportional to genuinely distinct resource selections.
func Automorphisms(g *graph.Graph) []Mapping {
	autos, _ := AutomorphismsBounded(g, Options{})
	return autos
}

// AutomorphismsBounded is Automorphisms under search Options (timeout,
// solution cap). The second result reports whether the returned group is
// provably complete; service layers skip symmetry reduction otherwise
// (deduplicating with a partial group would be unsound only in the sense
// of under-merging, but the caller deserves to know).
func AutomorphismsBounded(g *graph.Graph, opt Options) ([]Mapping, bool) {
	if g.NumNodes() == 0 {
		return []Mapping{{}}, true
	}
	// A monomorphism of g into itself over the full node set maps edges
	// injectively into the same finite edge set, so it is automatically
	// onto: every adjacency-preserving self-embedding is an automorphism
	// of the underlying graph. ECF enumerates those; attribute equality
	// is enforced afterwards.
	p := &Problem{Query: g, Host: g}
	opt.OnSolution = nil
	res := ECF(p, opt)
	autos := res.Solutions[:0]
	for _, m := range res.Solutions {
		if attrPreserving(g, m) {
			autos = append(autos, m)
		}
	}
	return autos, res.Exhausted
}

// attrPreserving reports whether mapping m preserves node and edge
// attribute bags exactly.
func attrPreserving(g *graph.Graph, m Mapping) bool {
	for q := range m {
		if !attrsEqual(g.Node(graph.NodeID(q)).Attrs, g.Node(m[q]).Attrs) {
			return false
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		img, ok := g.EdgeBetween(m[e.From], m[e.To])
		if !ok {
			return false
		}
		if !attrsEqual(e.Attrs, g.Edge(img).Attrs) {
			return false
		}
	}
	return true
}

func attrsEqual(a, b graph.Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !v.Equal(b.Get(k)) {
			return false
		}
	}
	return true
}

// CanonicalSolutions deduplicates embeddings that are equivalent up to a
// query automorphism: m and m∘σ select the same hosting resources with
// relabeled query roles. The representative kept for each orbit is the
// lexicographically smallest composition; output order follows the first
// appearance of each orbit. autos must include the identity (as returned
// by Automorphisms).
func CanonicalSolutions(solutions []Mapping, autos []Mapping) []Mapping {
	if len(autos) <= 1 {
		return solutions
	}
	seen := make(map[string]bool, len(solutions))
	var out []Mapping
	for _, m := range solutions {
		rep := canonicalForm(m, autos)
		key := mapKey(rep)
		if !seen[key] {
			seen[key] = true
			out = append(out, rep)
		}
	}
	return out
}

// canonicalForm returns the lexicographically smallest m∘σ over autos.
func canonicalForm(m Mapping, autos []Mapping) Mapping {
	best := m
	composed := make(Mapping, len(m))
	for _, sigma := range autos {
		// (m ∘ σ)[q] = m[σ[q]]
		for q := range composed {
			composed[q] = m[sigma[q]]
		}
		if lexLess(composed, best) {
			best = composed.Clone()
		}
	}
	return best
}

func lexLess(a, b Mapping) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func mapKey(m Mapping) string {
	buf := make([]byte, 0, len(m)*4)
	for _, r := range m {
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(buf)
}

// OrbitCount returns the number of distinct resource selections among
// solutions under the query's automorphism group — the size of
// CanonicalSolutions without materializing it.
func OrbitCount(solutions []Mapping, autos []Mapping) int {
	if len(autos) <= 1 {
		return len(solutions)
	}
	seen := make(map[string]bool, len(solutions))
	for _, m := range solutions {
		seen[mapKey(canonicalForm(m, autos))] = true
	}
	return len(seen)
}

// SortMappings orders embeddings lexicographically in place (exported
// counterpart of the parallel driver's determinism helper).
func SortMappings(ms []Mapping) {
	sort.Slice(ms, func(i, j int) bool { return lexLess(ms[i], ms[j]) })
}
