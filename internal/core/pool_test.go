package core

import (
	"fmt"
	"testing"
)

// TestPooledSearchMatchesFresh pins the recycling layer's correctness
// contract: a search that lands on a recycled fcSearcher/Filters (after
// the pool has been polluted by differently-shaped problems) must return
// byte-identical answers — same solutions, same order, same outcome
// classification — as a search running on freshly allocated state. Any
// stale bit a release/acquire pair fails to reset shows up here as a
// divergent solution sequence.
func TestPooledSearchMatchesFresh(t *testing.T) {
	defer func() { poolingEnabled = true }()

	algos := []struct {
		name string
		run  func(*Problem, Options) *Result
		opt  Options
	}{
		{"ecf", ECF, Options{}},
		{"ecf-bitset", ECF, Options{Repr: ReprBitset}},
		{"ecf-capped", ECF, Options{MaxSolutions: 2}},
		{"rwb", RWB, Options{Seed: 7, MaxSolutions: 1 << 30}},
		{"dynamic", DynamicECF, Options{}},
	}
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		for _, a := range algos {
			poolingEnabled = false
			fresh := a.run(p, a.opt)

			poolingEnabled = true
			// Pollute the pool: runs over problems with different node
			// counts, densities and representations leave their geometry
			// in the recycled searchers and filters.
			for _, s := range []int64{seed + 20, seed + 40} {
				q := smallProblem(t, s)
				_ = ECF(q, Options{})
				_ = ECF(q, Options{Repr: ReprBitset})
			}
			recycled := a.run(p, a.opt)

			assertSameSequence(t, fmt.Sprintf("seed %d %s", seed, a.name), recycled, fresh)
		}
	}
}

// TestPooledParallelMatchesSequential covers the worker-pool release
// path: every steal worker returns its searcher to the pool, and repeated
// parallel runs over reshaped problems must keep answering exactly like a
// fresh sequential search.
func TestPooledParallelMatchesSequential(t *testing.T) {
	defer func() { poolingEnabled = true }()
	for seed := int64(1); seed <= 6; seed++ {
		p := smallProblem(t, seed)
		poolingEnabled = false
		fresh := ECF(p, Options{})
		poolingEnabled = true
		for _, s := range []int64{seed + 11, seed + 23} {
			_ = ParallelECF(smallProblem(t, s), Options{Workers: 4})
		}
		par := ParallelECF(p, Options{Workers: 4})
		sameSolutionSets(t, fmt.Sprintf("seed %d parallel", seed), par.Solutions, fresh.Solutions)
	}
}

// TestReleaseIsNilSafe pins the guard clauses: releasing nil state or
// releasing with pooling disabled must be a no-op, not a panic, so error
// paths can call release unconditionally.
func TestReleaseIsNilSafe(t *testing.T) {
	var s *fcSearcher
	s.release()
	var f *Filters
	f.release()
	poolingEnabled = false
	defer func() { poolingEnabled = true }()
	p := smallProblem(t, 1)
	res := ECF(p, Options{})
	if res == nil {
		t.Fatal("ECF returned nil with pooling disabled")
	}
}
