package core

import (
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/sets"
)

// Filters is the paper's sparse 3-D filter construction (§V-A). The cell
// F[v, r, vs] — "candidate mappings for query node vs when query node v is
// mapped to host node r" — is laid out as one table per *directed query
// arc* (v → vs), indexed by r, holding a candidate set. The companion
// non-match filter F̄ is derivable as the complement against the host
// adjacency; BuildFilters tracks only its aggregate size, since the search
// needs just the positive sets.
//
// Rows are stored in one of two representations, chosen adaptively by
// Options.Repr (see sets.Bitset): sorted []int32 slices, or dense bitsets
// over the host universe. Exactly one of tables/tablesB is populated; the
// search loops ask Dense() and intersect whichever the filters carry. The
// base candidate sets are always materialized as sorted slices (the
// ordering heuristics and root sharding read them), with bitset mirrors
// in dense mode.
//
// Base candidate sets realize formula (1): by default tightened to the
// intersection of per-neighbor unions (still a superset of any feasible
// root assignment, so completeness is preserved); Options.LooseRoot keeps
// the paper's literal union.
type Filters struct {
	p     *Problem
	nq    int
	nr    int
	dense bool

	// arcTables[key(u,v)] lists table indices applying when u is placed
	// and v's candidates are needed (two entries only if the digraph has
	// both (u,v) and (v,u) edges).
	arcTables map[uint64][]int32
	// tables[t][r] = sorted candidate set for the arc's head when its tail
	// is placed at host node r (sparse representation; nil when dense).
	tables [][]sets.Set
	// tablesB[t][r] = the same rows as bitsets; a nil row is empty
	// (dense representation; nil when sparse).
	tablesB [][]*sets.Bitset

	// base[q] = candidate host nodes for query node q before any
	// neighbor is placed, always as a sorted slice.
	base []sets.Set
	// baseB mirrors base as bitsets in dense mode.
	baseB []*sets.Bitset

	// nodePass[q] = host nodes passing the node constraint and degree
	// filter for q (nil when no filtering applies).
	nodePass []sets.Set

	stats Stats

	// Pool-recycled scratch (see pool.go): per-node admissibility
	// bitsets, positional row arenas for the indexed fill, the tableOf
	// buffer, the incoming-arc dedup stamp with its output buffer, and
	// the per-arc union accumulator of buildBaseDense.
	passBits  []*sets.Bitset
	arenas    []rowArena
	arenaNext int
	tableOf   []edgeTables
	arcStamp  *tableStamp
	arcsBuf   []int32
	unionBuf  *sets.Bitset
}

func arcKey(u, v graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// denseWordCap bounds the per-row word count under which bitset rows
// always win: at ≤16 words (hosts up to 1024 nodes) an intersection is a
// few branch-free ops, cheaper than merging even short sorted slices.
const denseWordCap = 16

// chooseDense picks the row representation. Beyond the small-host regime
// the decision follows density: a filter row for arc (u,v) at host node r
// is a subset of r's neighbors, so the average host degree bounds the
// average row cardinality. Word-parallel AND (⌈nr/64⌉ ops) beats merging
// two average rows (~2·deg ops) once deg ≥ nr/128; requiring nr/64 adds
// slack so the dense tables (nr/8 bytes per non-empty row) never grossly
// outsize the slices they replace.
func chooseDense(repr Repr, nr, hostEdges int) bool {
	switch repr {
	case ReprSlice:
		return false
	case ReprBitset:
		return true
	}
	if nr == 0 {
		return false
	}
	if (nr+63)/64 <= denseWordCap {
		return true
	}
	avgDeg := 2 * float64(hostEdges) / float64(nr)
	return avgDeg >= float64(nr)/64
}

// BuildFilters evaluates the edge constraint over every (query edge, host
// edge) pair — the first stage of ECF/RWB — and assembles the filter
// tables and base candidate sets.
//
// With a compatible Options.Index the expensive scans are replaced by
// index lookups: node admissibility intersects the index's degree strata
// (evaluating the node constraint only on stratum members), and when no
// edge constraint applies the filter tables are assembled row-wise from
// adjacency bitsets instead of iterating every (query edge, host edge)
// pair. Both paths produce identical candidate sets; the scan remains
// the oracle the property tests compare against.
func BuildFilters(p *Problem, opt *Options) *Filters {
	start := time.Now()
	idx := opt.Index
	if idx != nil &&
		(idx.NumNodes() != p.Host.NumNodes() ||
			idx.Directed() != p.Host.Directed() ||
			opt.Repr == ReprSlice) {
		// Stale snapshot (universe mismatch) or forced sparse rows: the
		// index cannot serve this build, scan instead.
		idx = nil
	}
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	dense := chooseDense(opt.Repr, nr, p.Host.NumEdges())
	if idx != nil {
		dense = true // index-backed tables are assembled as bitsets
	}
	f := acquireFilters()
	f.p = p
	f.nq, f.nr, f.dense = nq, nr, dense
	f.stats = Stats{}
	f.arenaNext = 0
	f.tables = f.tables[:0]
	f.tablesB = f.tablesB[:0]
	if f.arcTables == nil {
		f.arcTables = make(map[uint64][]int32, 2*p.Query.NumEdges())
	} else {
		clear(f.arcTables)
	}

	// Per-node admissibility: node constraint ∧ degree filter.
	f.nodePass = grow(f.nodePass, nq)
	f.passBits = grow(f.passBits, nq)
	passBits := f.passBits
	if idx != nil {
		f.buildNodePassIndexed(opt, idx, passBits)
	} else {
		f.buildNodePassScan(opt, passBits)
	}

	if idx != nil && p.EdgeConstraint == nil {
		f.fillTablesIndexed(idx, passBits)
	} else {
		f.fillTablesScan(opt, passBits)
	}

	if f.dense {
		f.buildBaseDense(opt.LooseRoot)
	} else {
		f.buildBase(opt.LooseRoot)
	}
	f.stats.FilterBuild = time.Since(start)
	return f
}

// buildNodePassScan computes per-node admissibility by scanning every
// (query node, host node) pair.
func (f *Filters) buildNodePassScan(opt *Options, passBits []*sets.Bitset) {
	p := f.p
	useDegree := !opt.NoDegreeFilter
	for q := 0; q < f.nq; q++ {
		qid := graph.NodeID(q)
		pass := f.nodePass[q][:0]
		degQ := p.Query.Degree(qid)
		outQ := p.Query.OutDegree(qid)
		for r := 0; r < f.nr; r++ {
			rid := graph.NodeID(r)
			if useDegree {
				if p.Host.Degree(rid) < degQ || p.Host.OutDegree(rid) < outQ {
					continue
				}
			}
			if !p.nodeOK(qid, rid) {
				continue
			}
			pass = append(pass, rid)
		}
		f.nodePass[q] = pass
		pb := sets.ReuseBitset(passBits[q], f.nr)
		pb.AddSet(pass)
		passBits[q] = pb
	}
}

// buildNodePassIndexed computes the same admissibility sets from the
// index's degree strata: one AND of two ladder rungs per query node, with
// the node constraint evaluated only on the stratum members.
func (f *Filters) buildNodePassIndexed(opt *Options, idx *index.Index, passBits []*sets.Bitset) {
	p := f.p
	for q := 0; q < f.nq; q++ {
		qid := graph.NodeID(q)
		pass := sets.ReuseBitset(passBits[q], f.nr)
		passBits[q] = pass
		if opt.NoDegreeFilter {
			pass.CopyFrom(idx.DegreeAtLeast(0))
		} else {
			pass.CopyFrom(idx.DegreeAtLeast(p.Query.Degree(qid)))
			pass.IntersectWith(idx.OutDegreeAtLeast(p.Query.OutDegree(qid)))
		}
		if p.NodeConstraint != nil {
			// ForEach snapshots each word before visiting, so clearing
			// the bit just visited is safe.
			pass.ForEach(func(r graph.NodeID) bool {
				if !p.nodeOK(qid, r) {
					pass.Clear(r)
				}
				return true
			})
		}
		f.nodePass[q] = pass.AppendTo(f.nodePass[q][:0])
	}
}

// edgeTables pairs the two table IDs owned by one query edge.
type edgeTables struct{ fwd, bwd int32 }

// newArcTables allocates one table per directed query arc, serially so
// table IDs and the arc index are deterministic regardless of how the
// fill stage is parallelized.
func (f *Filters) newArcTables() []edgeTables {
	p := f.p
	newTable := func(u, v graph.NodeID) int32 {
		var id int32
		if f.dense {
			id = int32(len(f.tablesB))
			f.tablesB = appendTableB(f.tablesB, f.nr)
		} else {
			id = int32(len(f.tables))
			f.tables = appendTable(f.tables, f.nr)
		}
		k := arcKey(u, v)
		f.arcTables[k] = append(f.arcTables[k], id)
		return id
	}
	f.tableOf = grow(f.tableOf, p.Query.NumEdges())
	tableOf := f.tableOf
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		tableOf[i] = edgeTables{
			fwd: newTable(qe.From, qe.To), // From placed -> candidates for To
			bwd: newTable(qe.To, qe.From), // To placed -> candidates for From
		}
	}
	return tableOf
}

// fillTablesScan evaluates the edge constraint over every (query edge,
// host edge) pair, sharding the fill per query edge across
// Options.Workers goroutines — each edge owns its two tables, so workers
// never share mutable state beyond the stats counters.
//
//netembedvet:allow stoppoll the worker `for {}` drains a bounded atomic cursor over query edges; filter build is O(|Eq|·|Er|) work measured by Stats.FilterBuild, not an unbounded search
func (f *Filters) fillTablesScan(opt *Options, passBits []*sets.Bitset) {
	p := f.p
	nr := f.nr
	tableOf := f.newArcTables()

	var pairsEval, entries atomic.Int64
	fillEdge := func(i int) {
		qe := p.Query.Edge(graph.EdgeID(i))
		var localPairs, localEntries int64

		// admit checks endpoint admissibility first — a candidate that
		// fails its node filter can never appear in a mapping — then the
		// edge constraint, and records the pairing in this edge's tables.
		var admit func(rs, rt graph.NodeID, re *graph.Edge)
		if f.dense {
			fwd, bwd := f.tablesB[tableOf[i].fwd], f.tablesB[tableOf[i].bwd]
			admit = func(rs, rt graph.NodeID, re *graph.Edge) {
				if !passBits[qe.From].Has(rs) || !passBits[qe.To].Has(rt) {
					return
				}
				localPairs++
				if !p.edgeOK(qe, re, rs, rt) {
					return
				}
				// Rows are allocated lazily: empty rows stay nil so the
				// dense tables cost memory only where candidates exist.
				if fwd[rs] == nil {
					fwd[rs] = sets.NewBitset(nr)
				}
				fwd[rs].Set(rt)
				if bwd[rt] == nil {
					bwd[rt] = sets.NewBitset(nr)
				}
				bwd[rt].Set(rs)
				localEntries += 2
			}
		} else {
			fwd, bwd := f.tables[tableOf[i].fwd], f.tables[tableOf[i].bwd]
			admit = func(rs, rt graph.NodeID, re *graph.Edge) {
				if !passBits[qe.From].Has(rs) || !passBits[qe.To].Has(rt) {
					return
				}
				localPairs++
				if !p.edgeOK(qe, re, rs, rt) {
					return
				}
				fwd[rs] = append(fwd[rs], rt)
				bwd[rt] = append(bwd[rt], rs)
				localEntries += 2
			}
		}

		for j := 0; j < p.Host.NumEdges(); j++ {
			re := p.Host.Edge(graph.EdgeID(j))
			admit(re.From, re.To, re)
			if !p.Host.Directed() {
				// The undirected host edge also matches with swapped roles.
				admit(re.To, re.From, re)
			}
		}
		if !f.dense {
			fwd, bwd := f.tables[tableOf[i].fwd], f.tables[tableOf[i].bwd]
			for r := 0; r < nr; r++ {
				fwd[r] = sets.FromUnsorted(fwd[r])
				bwd[r] = sets.FromUnsorted(bwd[r])
			}
		}
		pairsEval.Add(localPairs)
		entries.Add(localEntries)
	}

	if workers := opt.Workers; workers > 1 && p.Query.NumEdges() > 1 {
		var wg sync.WaitGroup
		next := atomic.Int64{}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= p.Query.NumEdges() {
						return
					}
					fillEdge(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < p.Query.NumEdges(); i++ {
			fillEdge(i)
		}
	}
	f.stats.EdgePairsEval = pairsEval.Load()
	f.stats.FilterEntries = entries.Load()
}

// fillTablesIndexed assembles the topology-only filter tables from the
// index's adjacency bitsets: the row for arc (u→v) at host node r is
// adj(r) ∧ pass(v), two word-parallel ops instead of a scan over the
// host edge list. Valid only when no edge constraint applies — with one,
// every (query edge, host edge) pair must be evaluated and
// fillTablesScan runs instead.
//
// Rows live in one arena per table (a single backing allocation); rows
// that intersect to nothing stay nil exactly like the scan's lazily
// allocated rows. EdgePairsEval stays 0 on this path — no pairs are
// evaluated, which is the point — while FilterEntries still counts the
// candidate bits stored.
func (f *Filters) fillTablesIndexed(idx *index.Index, passBits []*sets.Bitset) {
	p := f.p
	tableOf := f.newArcTables()
	var entries int64
	fill := func(table []*sets.Bitset, tailPass, headPass *sets.Bitset, adj func(graph.NodeID) *sets.Bitset) {
		n := tailPass.Count()
		if n == 0 || !headPass.Any() {
			return
		}
		arena := f.nextArena(n)
		next := 0
		tailPass.ForEach(func(r graph.NodeID) bool {
			row := &arena[next]
			row.CopyFrom(adj(r))
			if row.IntersectWith(headPass) {
				table[r] = row
				next++
				entries += int64(row.Count())
			}
			return true
		})
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		// fwd: From placed at r -> To's candidates are r's out-neighbors;
		// bwd: To placed at r -> From's candidates are r's in-neighbors
		// (both reduce to plain neighbors on undirected hosts).
		fill(f.tablesB[tableOf[i].fwd], passBits[qe.From], passBits[qe.To], idx.Neighbors)
		fill(f.tablesB[tableOf[i].bwd], passBits[qe.To], passBits[qe.From], idx.InNeighbors)
	}
	f.stats.FilterEntries = entries
}

// buildBase computes the per-node base candidate sets (formula (1)) on the
// sorted-slice representation.
func (f *Filters) buildBase(loose bool) {
	f.base = grow(f.base, f.nq)
	var scratchA, scratchB sets.Set
	for q := 0; q < f.nq; q++ {
		qid := graph.NodeID(q)
		arcs := f.incomingArcTables(qid)
		if len(arcs) == 0 {
			// Isolated query node: only the node filter constrains it.
			f.base[q] = append(f.base[q][:0], f.nodePass[q]...)
			continue
		}
		var acc sets.Set
		for i, t := range arcs {
			// per-arc union: every host node that appears as a candidate
			// for q in any row of this arc's table.
			var u sets.Set
			for r := 0; r < f.nr; r++ {
				if len(f.tables[t][r]) > 0 {
					scratchA = sets.UnionInto(scratchA[:0], u, f.tables[t][r])
					u, scratchA = scratchA, u
				}
			}
			if i == 0 {
				acc = sets.Clone(u)
				continue
			}
			if loose {
				scratchB = sets.UnionInto(scratchB[:0], acc, u)
			} else {
				scratchB = sets.IntersectInto(scratchB[:0], acc, u)
			}
			acc, scratchB = scratchB, acc
		}
		f.base[q] = append(f.base[q][:0], acc...)
	}
}

// buildBaseDense is buildBase on bitset rows: the per-arc unions are
// word-wise ORs and the cross-arc combination one AND/OR per arc.
func (f *Filters) buildBaseDense(loose bool) {
	f.base = grow(f.base, f.nq)
	f.baseB = grow(f.baseB, f.nq)
	u := sets.ReuseBitset(f.unionBuf, f.nr)
	f.unionBuf = u
	for q := 0; q < f.nq; q++ {
		qid := graph.NodeID(q)
		arcs := f.incomingArcTables(qid)
		acc := sets.ReuseBitset(f.baseB[q], f.nr)
		f.baseB[q] = acc
		if len(arcs) == 0 {
			acc.AddSet(f.nodePass[q])
			f.base[q] = append(f.base[q][:0], f.nodePass[q]...)
			continue
		}
		for i, t := range arcs {
			u.Reset()
			for r := 0; r < f.nr; r++ {
				if row := f.tablesB[t][r]; row != nil {
					u.UnionWith(row)
				}
			}
			switch {
			case i == 0:
				acc.CopyFrom(u)
			case loose:
				acc.UnionWith(u)
			default:
				acc.IntersectWith(u)
			}
		}
		f.base[q] = acc.AppendTo(f.base[q][:0])
	}
}

// incomingArcTables returns the table indices of every arc whose head is
// q, i.e. the filters constraining q's candidates once a neighbor is
// placed.
func (f *Filters) incomingArcTables(q graph.NodeID) []int32 {
	nTables := len(f.tables) + len(f.tablesB)
	if f.arcStamp == nil {
		f.arcStamp = newTableStamp(nTables)
	} else {
		f.arcStamp.reset(nTables)
	}
	f.arcStamp.next()
	out := f.arcsBuf[:0]
	appendTables := func(u graph.NodeID) {
		for _, t := range f.arcTables[arcKey(u, q)] {
			if f.arcStamp.mark(t) {
				out = append(out, t)
			}
		}
	}
	for _, a := range f.p.Query.Arcs(q) {
		appendTables(a.To)
	}
	if f.p.Query.Directed() {
		for _, a := range f.p.Query.InArcs(q) {
			appendTables(a.To)
		}
	}
	f.arcsBuf = out
	return out
}

// Dense reports whether the filter tables carry the bitset representation.
func (f *Filters) Dense() bool { return f.dense }

// Base returns the base candidate set for query node q (do not modify).
func (f *Filters) Base(q graph.NodeID) sets.Set { return f.base[q] }

// CandidatesGiven returns the filter row for query node head given that
// query node tail has been placed at host node r, one sorted set per arc
// table relating the two nodes. An empty result means the pair of nodes is
// not adjacent in the query. In dense mode the rows are materialized as
// fresh sorted slices.
func (f *Filters) CandidatesGiven(tail, head graph.NodeID, r graph.NodeID) []sets.Set {
	ts := f.arcTables[arcKey(tail, head)]
	if len(ts) == 0 {
		return nil
	}
	rows := make([]sets.Set, len(ts))
	for i, t := range ts {
		if f.dense {
			if row := f.tablesB[t][r]; row != nil {
				rows[i] = row.AppendTo(nil)
			}
		} else {
			rows[i] = f.tables[t][r]
		}
	}
	return rows
}

// Stats returns the filter-construction counters.
func (f *Filters) Stats() Stats { return f.stats }
