package core

import (
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// Filters is the paper's sparse 3-D filter construction (§V-A). The cell
// F[v, r, vs] — "candidate mappings for query node vs when query node v is
// mapped to host node r" — is laid out as one table per *directed query
// arc* (v → vs), indexed by r, holding a sorted candidate set. The
// companion non-match filter F̄ is derivable as the complement against the
// host adjacency; BuildFilters tracks only its aggregate size, since the
// search needs just the positive sets.
//
// Base candidate sets realize formula (1): by default tightened to the
// intersection of per-neighbor unions (still a superset of any feasible
// root assignment, so completeness is preserved); Options.LooseRoot keeps
// the paper's literal union.
type Filters struct {
	p  *Problem
	nq int
	nr int

	// arcTables[key(u,v)] lists table indices applying when u is placed
	// and v's candidates are needed (two entries only if the digraph has
	// both (u,v) and (v,u) edges).
	arcTables map[uint64][]int32
	// tables[t][r] = sorted candidate set for the arc's head when its tail
	// is placed at host node r.
	tables [][]sets.Set

	// base[q] = candidate host nodes for query node q before any
	// neighbor is placed.
	base []sets.Set

	// nodePass[q] = host nodes passing the node constraint and degree
	// filter for q (nil when no filtering applies).
	nodePass []sets.Set

	stats Stats
}

func arcKey(u, v graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// BuildFilters evaluates the edge constraint over every (query edge, host
// edge) pair — the first stage of ECF/RWB — and assembles the filter
// tables and base candidate sets.
func BuildFilters(p *Problem, opt *Options) *Filters {
	start := time.Now()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	f := &Filters{
		p:         p,
		nq:        nq,
		nr:        nr,
		arcTables: make(map[uint64][]int32, 2*p.Query.NumEdges()),
	}

	// Per-node admissibility: node constraint ∧ degree filter.
	f.nodePass = make([]sets.Set, nq)
	useDegree := !opt.NoDegreeFilter
	for q := 0; q < nq; q++ {
		qid := graph.NodeID(q)
		var pass sets.Set
		degQ := p.Query.Degree(qid)
		outQ := p.Query.OutDegree(qid)
		for r := 0; r < nr; r++ {
			rid := graph.NodeID(r)
			if useDegree {
				if p.Host.Degree(rid) < degQ || p.Host.OutDegree(rid) < outQ {
					continue
				}
			}
			if !p.nodeOK(qid, rid) {
				continue
			}
			pass = append(pass, rid)
		}
		f.nodePass[q] = pass
	}
	passBits := make([]*sets.Bits, nq)
	for q := range passBits {
		passBits[q] = sets.NewBits(nr)
		for _, r := range f.nodePass[q] {
			passBits[q].Set(r)
		}
	}

	// One table per directed query arc, allocated serially so table IDs
	// and the arc index are deterministic; the expensive fill loop over
	// (query edge × host edge) pairs is then sharded per query edge
	// across Options.Workers goroutines — each edge owns its two tables,
	// so workers never share mutable state beyond the stats counters.
	newTable := func(u, v graph.NodeID) int32 {
		id := int32(len(f.tables))
		f.tables = append(f.tables, make([]sets.Set, nr))
		k := arcKey(u, v)
		f.arcTables[k] = append(f.arcTables[k], id)
		return id
	}
	type edgeTables struct{ fwd, bwd int32 }
	tableOf := make([]edgeTables, p.Query.NumEdges())
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		tableOf[i] = edgeTables{
			fwd: newTable(qe.From, qe.To), // From placed -> candidates for To
			bwd: newTable(qe.To, qe.From), // To placed -> candidates for From
		}
	}

	var pairsEval, entries atomic.Int64
	fillEdge := func(i int) {
		qe := p.Query.Edge(graph.EdgeID(i))
		fwd, bwd := f.tables[tableOf[i].fwd], f.tables[tableOf[i].bwd]
		var localPairs, localEntries int64

		admit := func(rs, rt graph.NodeID, re *graph.Edge) {
			// Check endpoint admissibility first: a candidate that fails
			// its node filter can never appear in a mapping.
			if !passBits[qe.From].Has(rs) || !passBits[qe.To].Has(rt) {
				return
			}
			localPairs++
			if !p.edgeOK(qe, re, rs, rt) {
				return
			}
			fwd[rs] = append(fwd[rs], rt)
			bwd[rt] = append(bwd[rt], rs)
			localEntries += 2
		}

		for j := 0; j < p.Host.NumEdges(); j++ {
			re := p.Host.Edge(graph.EdgeID(j))
			admit(re.From, re.To, re)
			if !p.Host.Directed() {
				// The undirected host edge also matches with swapped roles.
				admit(re.To, re.From, re)
			}
		}
		for r := 0; r < nr; r++ {
			fwd[r] = sets.FromUnsorted(fwd[r])
			bwd[r] = sets.FromUnsorted(bwd[r])
		}
		pairsEval.Add(localPairs)
		entries.Add(localEntries)
	}

	if workers := opt.Workers; workers > 1 && p.Query.NumEdges() > 1 {
		var wg sync.WaitGroup
		next := atomic.Int64{}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= p.Query.NumEdges() {
						return
					}
					fillEdge(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < p.Query.NumEdges(); i++ {
			fillEdge(i)
		}
	}
	f.stats.EdgePairsEval = pairsEval.Load()
	f.stats.FilterEntries = entries.Load()

	f.buildBase(opt.LooseRoot)
	f.stats.FilterBuild = time.Since(start)
	return f
}

// buildBase computes the per-node base candidate sets (formula (1)).
func (f *Filters) buildBase(loose bool) {
	f.base = make([]sets.Set, f.nq)
	var scratchA, scratchB sets.Set
	for q := 0; q < f.nq; q++ {
		qid := graph.NodeID(q)
		arcs := f.incomingArcTables(qid)
		if len(arcs) == 0 {
			// Isolated query node: only the node filter constrains it.
			f.base[q] = sets.Clone(f.nodePass[q])
			continue
		}
		var acc sets.Set
		for i, t := range arcs {
			// per-arc union: every host node that appears as a candidate
			// for q in any row of this arc's table.
			var u sets.Set
			for r := 0; r < f.nr; r++ {
				if len(f.tables[t][r]) > 0 {
					scratchA = sets.UnionInto(scratchA[:0], u, f.tables[t][r])
					u, scratchA = scratchA, u
				}
			}
			if i == 0 {
				acc = sets.Clone(u)
				continue
			}
			if loose {
				scratchB = sets.UnionInto(scratchB[:0], acc, u)
			} else {
				scratchB = sets.IntersectInto(scratchB[:0], acc, u)
			}
			acc, scratchB = scratchB, acc
		}
		f.base[q] = sets.Clone(acc)
	}
}

// incomingArcTables returns the table indices of every arc whose head is
// q, i.e. the filters constraining q's candidates once a neighbor is
// placed.
func (f *Filters) incomingArcTables(q graph.NodeID) []int32 {
	var out []int32
	seen := map[int32]bool{}
	appendTables := func(u graph.NodeID) {
		for _, t := range f.arcTables[arcKey(u, q)] {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	for _, a := range f.p.Query.Arcs(q) {
		appendTables(a.To)
	}
	if f.p.Query.Directed() {
		for _, a := range f.p.Query.InArcs(q) {
			appendTables(a.To)
		}
	}
	return out
}

// Base returns the base candidate set for query node q (do not modify).
func (f *Filters) Base(q graph.NodeID) sets.Set { return f.base[q] }

// CandidatesGiven returns the filter row for query node head given that
// query node tail has been placed at host node r, one sorted set per arc
// table relating the two nodes. An empty result means the pair of nodes is
// not adjacent in the query.
func (f *Filters) CandidatesGiven(tail, head graph.NodeID, r graph.NodeID) []sets.Set {
	ts := f.arcTables[arcKey(tail, head)]
	if len(ts) == 0 {
		return nil
	}
	rows := make([]sets.Set, len(ts))
	for i, t := range ts {
		rows[i] = f.tables[t][r]
	}
	return rows
}

// Stats returns the filter-construction counters.
func (f *Filters) Stats() Stats { return f.stats }
