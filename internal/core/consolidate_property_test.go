package core

import (
	"math/rand"
	"testing"

	"netembed/internal/graph"
)

// bruteConsolidated enumerates every assignment vector of query nodes to
// host nodes and keeps those VerifyConsolidated accepts — the oracle the
// search is checked against. Only viable for tiny instances (n^k grows
// fast).
func bruteConsolidated(p *Problem, copt ConsolidateOptions) []Mapping {
	nq, nh := p.Query.NumNodes(), p.Host.NumNodes()
	var out []Mapping
	assign := make(Mapping, nq)
	var walk func(d int)
	walk = func(d int) {
		if d == nq {
			if p.VerifyConsolidated(assign, copt) == nil {
				out = append(out, assign.Clone())
			}
			return
		}
		for r := 0; r < nh; r++ {
			assign[d] = graph.NodeID(r)
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

// randomConsInstance builds a small random problem with random capacities
// (1..3) and demands (0.5, 1 or 1.5), and a delay-window constraint that
// some loopbacks pass and some real edges fail.
func randomConsInstance(rng *rand.Rand) *Problem {
	nh := 3 + rng.Intn(3) // 3..5 hosts
	host := graph.NewUndirected()
	for i := 0; i < nh; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("capacity", float64(1+rng.Intn(3))))
	}
	for i := 0; i < nh; i++ {
		for j := i + 1; j < nh; j++ {
			if rng.Float64() < 0.7 {
				host.MustAddEdge(graph.NodeID(i), graph.NodeID(j), graph.Attrs{}.
					SetNum("maxDelay", 5+rng.Float64()*40))
			}
		}
	}
	nq := 2 + rng.Intn(3) // 2..4 query nodes
	q := graph.NewUndirected()
	demands := []float64{0.5, 1, 1.5}
	for i := 0; i < nq; i++ {
		q.AddNode("", graph.Attrs{}.SetNum("demand", demands[rng.Intn(len(demands))]))
	}
	for i := 1; i < nq; i++ {
		q.MustAddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), graph.Attrs{}.
			SetNum("maxDelay", 10+rng.Float64()*30))
	}
	for i := 0; i < nq; i++ {
		for j := i + 1; j < nq; j++ {
			if !q.HasEdge(graph.NodeID(i), graph.NodeID(j)) && rng.Float64() < 0.3 {
				q.MustAddEdge(graph.NodeID(i), graph.NodeID(j), graph.Attrs{}.
					SetNum("maxDelay", 10+rng.Float64()*30))
			}
		}
	}
	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		panic(err)
	}
	return p
}

// TestConsolidatePropertyMatchesBruteForce checks completeness and
// correctness of the many-to-one search against exhaustive enumeration on
// 60 random instances: identical solution sets, every solution verified.
func TestConsolidatePropertyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	copt := ConsolidateOptions{}
	for trial := 0; trial < 60; trial++ {
		p := randomConsInstance(rng)
		want := solutionSet(bruteConsolidated(p, copt))
		res := Consolidate(p, Options{}, copt)
		got := solutionSet(res.Solutions)
		if len(got) != len(want) {
			t.Fatalf("trial %d: search found %d solutions, brute force %d (query %d nodes, host %d nodes)",
				trial, len(got), len(want), p.Query.NumNodes(), p.Host.NumNodes())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: brute-force solution %s missed by the search", trial, k)
			}
		}
		if !res.Exhausted || res.Status == StatusPartial {
			t.Fatalf("trial %d: untimed run not exhaustive (status %v)", trial, res.Status)
		}
	}
}
