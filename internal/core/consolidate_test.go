package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
)

// consHost builds a small undirected host: a ring of nClusters "machines"
// with the given capacity, every ring link carrying delay 10.
func consHost(nClusters int, capacity float64) *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < nClusters; i++ {
		g.AddNode(fmt.Sprintf("m%d", i), graph.Attrs{}.SetNum("capacity", capacity))
	}
	ringAttrs := func() graph.Attrs {
		return graph.Attrs{}.SetNum("minDelay", 10).SetNum("avgDelay", 10).SetNum("maxDelay", 10)
	}
	for i := 0; i+1 < nClusters; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), ringAttrs())
	}
	if nClusters > 2 {
		g.MustAddEdge(graph.NodeID(nClusters-1), 0, ringAttrs())
	}
	return g
}

// lineQuery builds a path query of n nodes with unit demand and a delay
// ceiling that both real links (10) and loopbacks (0) satisfy.
func lineQuery(n int) *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), graph.Attrs{}.SetNum("demand", 1))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Attrs{}.SetNum("maxDelay", 50))
	}
	return g
}

var ceilingConstraint = expr.MustCompile("rEdge.maxDelay <= vEdge.maxDelay")

func TestConsolidateAllowsSharing(t *testing.T) {
	host := consHost(3, 2) // 3 machines, capacity 2 each
	q := lineQuery(5)      // 5 unit-demand nodes: must share

	// Injectively impossible: NewProblem refuses 5 query nodes on 3
	// hosts, NewConsolidatedProblem accepts.
	if _, err := NewProblem(q, host, ceilingConstraint, nil); err != ErrQueryTooLarge {
		t.Fatalf("NewProblem: got %v, want ErrQueryTooLarge", err)
	}
	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}

	res := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatal("no consolidated embedding found")
	}
	if res.Status != StatusComplete {
		t.Fatalf("status %v, want complete", res.Status)
	}
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, ConsolidateOptions{}); err != nil {
			t.Fatalf("reported mapping fails verification: %v", err)
		}
	}
}

func TestConsolidateRespectsCapacity(t *testing.T) {
	host := consHost(4, 1.5) // capacity 1.5: two unit demands do not fit
	q := lineQuery(5)
	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	// 5 nodes on 4 hosts with capacity 1.5 is infeasible (pigeonhole).
	if len(res.Solutions) != 0 {
		t.Fatalf("found %d embeddings violating capacity", len(res.Solutions))
	}
	if res.Status != StatusComplete {
		t.Fatalf("infeasible run should be a definitive no-match, got %v", res.Status)
	}
}

func TestConsolidateFractionalDemands(t *testing.T) {
	host := consHost(2, 1)
	q := graph.NewUndirected()
	for i := 0; i < 4; i++ {
		q.AddNode("", graph.Attrs{}.SetNum("demand", 0.5))
	}
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", 50))
	q.MustAddEdge(1, 2, graph.Attrs{}.SetNum("maxDelay", 50))
	q.MustAddEdge(2, 3, graph.Attrs{}.SetNum("maxDelay", 50))
	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatal("four half-demand nodes should fit two unit hosts")
	}
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, ConsolidateOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConsolidateLoopbackConstraint(t *testing.T) {
	host := consHost(3, 2)
	// The query edge demands a *minimum* delay of 5; a 0-delay loopback
	// cannot provide it, so co-location across that edge must be refused.
	q := graph.NewUndirected()
	q.AddNode("", nil)
	q.AddNode("", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 5))
	floor := expr.MustCompile("rEdge.minDelay >= vEdge.minDelay")
	p, err := NewProblem(q, host, floor, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	for _, m := range res.Solutions {
		if m[0] == m[1] {
			t.Fatalf("co-located endpoints despite minimum-delay demand: %v", m)
		}
	}
	if len(res.Solutions) == 0 {
		t.Fatal("distinct-host embeddings exist and were not found")
	}
}

func TestConsolidateLoopbackOptOut(t *testing.T) {
	host := consHost(3, 4)
	q := lineQuery(3)
	noLoopback := expr.MustCompile("rEdge.maxDelay <= vEdge.maxDelay && !has(rEdge.loopback)")
	p, err := NewProblem(q, host, noLoopback, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatal("no embeddings found")
	}
	for _, m := range res.Solutions {
		for e := 0; e < q.NumEdges(); e++ {
			qe := q.Edge(graph.EdgeID(e))
			if m[qe.From] == m[qe.To] {
				t.Fatalf("loopback opt-out violated by %v", m)
			}
		}
	}
}

// TestConsolidateDegeneratesToECF is the central equivalence property:
// with all capacities and demands at 1 the consolidated search must
// return exactly the injective ECF solution set.
func TestConsolidateDegeneratesToECF(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		host := randomAttrGraph(8+rng.Intn(5), 0.45, rng)
		q := randomAttrGraph(3+rng.Intn(3), 0.6, rng)
		p, err := NewProblem(q, host, ceilingConstraint, nil)
		if err != nil {
			t.Fatal(err)
		}
		ecf := ECF(p, Options{})
		cons := Consolidate(p, Options{}, ConsolidateOptions{})
		got, want := solutionSet(cons.Solutions), solutionSet(ecf.Solutions)
		if len(got) != len(want) {
			t.Fatalf("trial %d: consolidation found %d solutions, ECF %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: ECF solution %s missing from consolidation", trial, k)
			}
		}
	}
}

// randomAttrGraph builds a random connected-ish undirected graph whose
// edges carry a maxDelay in [10, 60].
func randomAttrGraph(n int, density float64, rng *rand.Rand) *graph.Graph {
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		g.AddNode("", nil)
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), graph.Attrs{}.
			SetNum("maxDelay", 10+rng.Float64()*50))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(graph.NodeID(i), graph.NodeID(j)) && rng.Float64() < density/3 {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), graph.Attrs{}.
					SetNum("maxDelay", 10+rng.Float64()*50))
			}
		}
	}
	return g
}

func TestConsolidateDirected(t *testing.T) {
	host := graph.NewDirected()
	for i := 0; i < 3; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("capacity", 2))
	}
	host.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", 10))
	host.MustAddEdge(1, 2, graph.Attrs{}.SetNum("maxDelay", 10))
	host.MustAddEdge(2, 0, graph.Attrs{}.SetNum("maxDelay", 10))

	q := graph.NewDirected()
	q.AddNode("", nil)
	q.AddNode("", nil)
	q.AddNode("", nil)
	q.AddNode("", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("maxDelay", 50))
	q.MustAddEdge(1, 2, graph.Attrs{}.SetNum("maxDelay", 50))
	q.MustAddEdge(2, 3, graph.Attrs{}.SetNum("maxDelay", 50))

	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatal("no directed consolidated embedding found")
	}
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, ConsolidateOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConsolidateNodeConstraint(t *testing.T) {
	host := consHost(4, 3)
	host.Node(0).Attrs = host.Node(0).Attrs.SetStr("osType", "linux")
	host.Node(1).Attrs = host.Node(1).Attrs.SetStr("osType", "freebsd")
	host.Node(2).Attrs = host.Node(2).Attrs.SetStr("osType", "linux")
	host.Node(3).Attrs = host.Node(3).Attrs.SetStr("osType", "linux")

	q := lineQuery(3)
	for i := 0; i < 3; i++ {
		q.Node(graph.NodeID(i)).Attrs = q.Node(graph.NodeID(i)).Attrs.SetStr("osType", "linux")
	}
	nodeC := expr.MustCompile("isBoundTo(vNode.osType, rNode.osType)")
	p, err := NewProblem(q, host, ceilingConstraint, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(res.Solutions) == 0 {
		t.Fatal("no embedding found")
	}
	for _, m := range res.Solutions {
		for _, r := range m {
			if r == 1 {
				t.Fatalf("query node placed on freebsd host: %v", m)
			}
		}
	}
}

func TestConsolidateTimeoutAndCap(t *testing.T) {
	host := consHost(6, 4)
	q := lineQuery(6)
	p, err := NewProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	capped := Consolidate(p, Options{MaxSolutions: 3}, ConsolidateOptions{})
	if len(capped.Solutions) != 3 || capped.Status != StatusPartial {
		t.Fatalf("cap: %d solutions, status %v", len(capped.Solutions), capped.Status)
	}
	timed := Consolidate(p, Options{Timeout: time.Nanosecond}, ConsolidateOptions{})
	if timed.Status == StatusComplete && len(timed.Solutions) == 0 {
		// A nanosecond deadline may still let the first few hundred steps
		// through (the clock is sampled every 256 steps); accept either a
		// partial result or a complete tiny enumeration.
		t.Log("tiny search completed before the first deadline check")
	}
}

func TestConsolidateStreamsSolutions(t *testing.T) {
	host := consHost(3, 2)
	q := lineQuery(4)
	p, err := NewConsolidatedProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	res := Consolidate(p, Options{OnSolution: func(m Mapping) bool {
		streamed++
		return streamed < 2
	}}, ConsolidateOptions{})
	if streamed != 2 {
		t.Fatalf("streamed %d solutions, want 2 (stop after second)", streamed)
	}
	if len(res.Solutions) != 0 {
		t.Fatal("OnSolution mode must not retain solutions")
	}
	if res.Status != StatusPartial {
		t.Fatalf("status %v, want partial", res.Status)
	}
}

func TestVerifyConsolidatedRejectsOverload(t *testing.T) {
	host := consHost(3, 1)
	q := lineQuery(2)
	p, err := NewProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes on host 0: demand 2 on capacity 1.
	if err := p.VerifyConsolidated(Mapping{0, 0}, ConsolidateOptions{}); err == nil {
		t.Fatal("overloaded mapping verified")
	}
}

func TestVerifyConsolidatedRejectsMissingEdge(t *testing.T) {
	host := consHost(5, 1) // ring: nodes 0 and 2 are not adjacent
	q := lineQuery(2)
	p, err := NewProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyConsolidated(Mapping{0, 2}, ConsolidateOptions{}); err == nil {
		t.Fatal("mapping across a missing host edge verified")
	}
}

func TestConsolidateSolutionsAreSorted(t *testing.T) {
	// Determinism check: two runs produce identical solution streams.
	host := consHost(4, 2)
	q := lineQuery(4)
	p, err := NewProblem(q, host, ceilingConstraint, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Consolidate(p, Options{}, ConsolidateOptions{})
	b := Consolidate(p, Options{}, ConsolidateOptions{})
	if len(a.Solutions) != len(b.Solutions) {
		t.Fatalf("non-deterministic solution count: %d vs %d", len(a.Solutions), len(b.Solutions))
	}
	ka := make([]string, len(a.Solutions))
	kb := make([]string, len(b.Solutions))
	for i := range a.Solutions {
		ka[i] = mappingKey(a.Solutions[i])
		kb[i] = mappingKey(b.Solutions[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("solution sets differ at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
}
