package core

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
)

// ParallelECF shards the first level of the ECF permutation tree — the
// candidate assignments of the root query node — across Options.Workers
// goroutines (default GOMAXPROCS). All workers share the immutable filter
// matrices — slice or bitset rows alike, per Options.Repr — and each
// carries its own intersection scratch, so each explores a disjoint
// subtree and the union of their solutions equals sequential ECF's
// solution set. Solutions are returned sorted for determinism.
//
// With Options.MaxSolutions set, the cap applies globally across workers,
// but which embeddings fill the quota depends on scheduling.
func ParallelECF(p *Problem, opt Options) *Result {
	workers := opt.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	f := BuildFilters(p, &opt)

	if p.Query.NumNodes() == 0 {
		// Degenerate: the empty query has exactly the empty embedding.
		return &Result{
			Solutions: []Mapping{{}},
			Status:    StatusComplete,
			Exhausted: true,
			Stats:     withElapsed(f.Stats(), start),
		}
	}

	order := searchOrder(f, opt.Order)
	root := order[0]
	rootCands := f.Base(root)

	// Round-robin sharding keeps per-worker load roughly even when
	// candidate hardness correlates with position.
	shards := make([][]int32, workers)
	for i, r := range rootCands {
		w := i % workers
		shards[w] = append(shards[w], r)
	}

	var (
		mu        sync.Mutex
		solutions []Mapping
		first     atomic.Int64 // earliest TimeToFirst in ns, 0 = none
		taken     atomic.Int64 // global solution count toward MaxSolutions
		timedOut  atomic.Bool
		stopped   atomic.Bool
		visited   atomic.Int64
		backtrack atomic.Int64
	)
	budget := int64(opt.MaxSolutions)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := shards[w]
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wopt := opt
			wopt.MaxSolutions = 0 // global budget handled below
			wopt.OnSolution = nil
			s := newSearcher(p, f, wopt, nil, start)
			s.opt.OnSolution = func(m Mapping) bool {
				n := taken.Add(1)
				if budget > 0 && n > budget {
					return false // quota consumed by other workers
				}
				ns := time.Since(start).Nanoseconds()
				if !first.CompareAndSwap(0, ns) {
					for {
						cur := first.Load()
						if cur <= ns || first.CompareAndSwap(cur, ns) {
							break
						}
					}
				}
				mu.Lock()
				solutions = append(solutions, m.Clone())
				mu.Unlock()
				if budget > 0 && n >= budget {
					stopped.Store(true)
					return false
				}
				return true
			}
			// Restrict the root level to this worker's shard.
			s.scratch[0] = append(s.scratch[0][:0], shard...)
			s.searchShard(shard)
			if s.timedOut {
				timedOut.Store(true)
			}
			if s.stopped {
				stopped.Store(true)
			}
			visited.Add(s.stats.NodesVisited)
			backtrack.Add(s.stats.Backtracks)
		}()
	}
	wg.Wait()

	sortMappings(solutions)
	stats := withElapsed(f.Stats(), start)
	stats.NodesVisited += visited.Load()
	stats.Backtracks += backtrack.Load()
	stats.TimeToFirst = time.Duration(first.Load())

	exhausted := !timedOut.Load() && !stopped.Load()
	n := len(solutions)
	return &Result{
		Solutions: solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, n),
		Stats:     stats,
	}
}

// searchShard runs the standard DFS with the root level fixed to the given
// candidate subset.
func (s *searcher) searchShard(shard []int32) {
	if len(s.order) == 0 {
		return
	}
	node := s.order[0]
	for _, r := range shard {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.stats.NodesVisited++
		s.assign[node] = r
		s.used.Set(r)
		s.search(1)
		s.used.Clear(r)
		s.assign[node] = -1
	}
}

func withElapsed(st Stats, start time.Time) Stats {
	st.Elapsed = time.Since(start)
	return st
}

// sortMappings orders embeddings lexicographically so parallel runs return
// deterministic output regardless of worker interleaving.
func sortMappings(ms []Mapping) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// RandomMapping returns a uniformly random injective (not necessarily
// feasible) assignment, used by baselines and tests as a starting point.
func RandomMapping(p *Problem, rng *rand.Rand) Mapping {
	nr := p.Host.NumNodes()
	perm := rng.Perm(nr)
	m := make(Mapping, p.Query.NumNodes())
	for q := range m {
		m[q] = graph.NodeID(perm[q])
	}
	return m
}
