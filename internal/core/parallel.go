package core

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
)

// ParallelECF explores the ECF permutation tree with a pool of
// Options.Workers goroutines (default GOMAXPROCS) over the shared
// immutable filter matrices — slice or bitset rows alike.
//
// The default engine schedules work-stealingly: workers pull root
// candidates (first-level subtrees) from a shared atomic cursor, so a
// worker that drew an easy subtree immediately claims the next one
// instead of idling, and while expanding a root each worker publishes
// surplus *second-level* subtrees onto a bounded deque that idle workers
// steal from once the cursor runs dry. A root whose subtree dwarfs all
// others — the static-sharding worst case, where one unlucky worker
// dominates wall-clock — is therefore split across the pool. With
// Options.Engine = SearchChrono the PR 1-era static round-robin sharding
// over the chronological searcher is kept as the ablation baseline.
//
// Both schedules enumerate exactly sequential ECF's solution set, and
// solutions are returned sorted for determinism. With
// Options.MaxSolutions set, the cap applies globally across workers, but
// which embeddings fill the quota depends on scheduling.
//
// The tail merge folds the pool's shared counters onto the filter-build
// stats. The excepted counters cannot be incremented here: EdgePairsEval
// and FilterEntries arrive inside f.Stats() from the build phase,
// ConstraintChk is LNS-only, and the Witness/Reach counters are
// path-mode-only.
//
//statsthread:fold core.Stats except EdgePairsEval, FilterEntries, ConstraintChk, WitnessProbes, WitnessHits, ReachPrunes
func ParallelECF(p *Problem, opt Options) *Result {
	if opt.Engine == SearchChrono {
		return parallelECFStatic(p, opt)
	}
	workers := opt.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	optimize := opt.Optimize && opt.Objective.Enabled()
	if optimize {
		opt.MaxSolutions = 0 // optimality needs the exhausted tree
		opt.OnSolution = nil
	}
	start := time.Now()
	f := BuildFilters(p, &opt)

	if p.Query.NumNodes() == 0 {
		// Degenerate: the empty query has exactly the empty embedding.
		res := &Result{
			Solutions: []Mapping{{}},
			Status:    StatusComplete,
			Exhausted: true,
			Stats:     withElapsed(f.Stats(), start),
		}
		f.release()
		return res
	}

	order := searchOrder(f, opt.Order)
	rootCands := f.Base(order[0])

	sh := &stealShared{
		deque:    make([]stealTask, 0, stealDequeCap),
		roots:    rootCands,
		budget:   int64(opt.MaxSolutions),
		start:    start,
		userStop: opt.Stop,
		optimize: optimize,
	}
	sh.incumbent.Store(math.Float64bits(math.Inf(1)))
	sh.cond = sync.NewCond(&sh.mu)
	sh.pending.Store(int64(len(rootCands)))
	if len(rootCands) == 0 {
		sh.close()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newStealWorker(p, f, opt, sh)
			w.loop()
			w.s.release()
		}()
	}
	wg.Wait()

	sortMappings(sh.solutions)
	stats := withElapsed(f.Stats(), start)
	stats.NodesVisited += sh.visited.Load()
	stats.Backtracks += sh.backtracks.Load()
	stats.PruneOps += sh.pruneOps.Load()
	stats.Wipeouts += sh.wipeouts.Load()
	stats.WipeoutDepthSum += sh.wipeoutDepth.Load()
	stats.Backjumps += sh.backjumps.Load()
	stats.Steals = sh.steals.Load()
	stats.BoundCuts += sh.boundCuts.Load()
	stats.IncumbentUpdates += sh.incumbentUpdates.Load()
	stats.BoundProbes += sh.boundProbes.Load()
	stats.TimeToFirst = time.Duration(sh.first.Load())

	exhausted := !sh.timedOut.Load() && !sh.stopped.Load()
	f.release()
	if optimize {
		res := &Result{Exhausted: exhausted, Stats: stats}
		if sh.hasBest {
			res.Solutions = []Mapping{sh.best.Clone()}
			res.Cost = sh.bestCost
		}
		res.Status = classify(exhausted, len(res.Solutions))
		return res
	}
	n := len(sh.solutions)
	return &Result{
		Solutions: sh.solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, n),
		Stats:     stats,
	}
}

// stealDequeCap bounds the shared deque: enough published subtrees to
// keep any realistic pool busy, small enough that publication overhead
// (one mutex push per task) stays invisible next to subtree search.
const stealDequeCap = 256

// stealTask is one published second-level subtree: the root's and the
// second node's host assignments.
type stealTask struct{ root, second int32 }

// stealShared is the state a ParallelECF worker pool shares.
type stealShared struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deque  []stealTask
	closed bool

	roots   []int32
	cursor  atomic.Int64 // next unclaimed root index
	pending atomic.Int64 // unfinished roots + published tasks
	futile  atomic.Bool  // a subtree proved failure independent of all roots

	budget   int64        // MaxSolutions across the pool (0 = unlimited)
	taken    atomic.Int64 // solutions claimed toward the budget
	userStop func() bool

	solutions []Mapping // guarded by mu
	first     atomic.Int64
	start     time.Time

	// Branch-and-bound pool state (Options.Optimize). The fleet incumbent
	// bound lives in one atomic word (Float64bits, monotone decreasing via
	// tightenIncumbent's CAS loop) so every worker's boundOK probe is a
	// single atomic load — never torn, never locked. The incumbent
	// *mapping* is colder (only improvements touch it) and rides under mu.
	optimize  bool
	incumbent atomic.Uint64
	best      Mapping // guarded by mu
	bestCost  float64 // guarded by mu
	hasBest   bool    // guarded by mu

	timedOut atomic.Bool
	stopped  atomic.Bool

	visited          atomic.Int64
	backtracks       atomic.Int64
	pruneOps         atomic.Int64
	wipeouts         atomic.Int64
	wipeoutDepth     atomic.Int64
	backjumps        atomic.Int64
	steals           atomic.Int64
	boundCuts        atomic.Int64
	incumbentUpdates atomic.Int64
	boundProbes      atomic.Int64
}

// close wakes every waiter so the pool can exit.
func (sh *stealShared) close() {
	sh.mu.Lock()
	sh.closed = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// finishUnit retires one unit of work (a root or a stolen task); the
// last unit closes the deque.
func (sh *stealShared) finishUnit() {
	if sh.pending.Add(-1) == 0 {
		sh.close()
	}
}

// tryPublish offers up to len(tasks) second-level subtrees to the pool
// and returns how many were accepted (deque capacity permitting). The
// pending count is bumped before the tasks become poppable so the pool
// cannot shut down while they wait.
func (sh *stealShared) tryPublish(tasks []stealTask) int {
	sh.mu.Lock()
	room := stealDequeCap - len(sh.deque)
	if room <= 0 || sh.closed {
		sh.mu.Unlock()
		return 0
	}
	n := len(tasks)
	if n > room {
		n = room
	}
	sh.pending.Add(int64(n))
	sh.deque = append(sh.deque, tasks[:n]...)
	sh.cond.Broadcast()
	sh.mu.Unlock()
	return n
}

// retract removes not-yet-stolen tasks of a root that conflict analysis
// just proved solution-free (a backjump to or past the root level), so
// thieves do not re-search subtrees whose failure is already known. The
// retracted units are retired like finished ones.
func (sh *stealShared) retract(root int32) {
	sh.mu.Lock()
	kept := sh.deque[:0]
	removed := 0
	for _, t := range sh.deque {
		if t.root == root {
			removed++
		} else {
			kept = append(kept, t)
		}
	}
	sh.deque = kept
	sh.mu.Unlock()
	if removed > 0 && sh.pending.Add(int64(-removed)) == 0 {
		sh.close()
	}
}

// popWait blocks until a stolen task is available or the pool is done.
func (sh *stealShared) popWait() (stealTask, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if n := len(sh.deque); n > 0 {
			t := sh.deque[n-1]
			sh.deque = sh.deque[:n-1]
			return t, true
		}
		if sh.closed {
			return stealTask{}, false
		}
		sh.cond.Wait()
	}
}

// stealWorker drives one goroutine's FC searcher over claimed roots and
// stolen subtrees, reusing the searcher's domains/trail across tasks
// (each task fully undoes its prefix, restoring the initial state).
type stealWorker struct {
	sh  *stealShared
	s   *fcSearcher
	nq  int
	pub []stealTask // publication scratch
}

func newStealWorker(p *Problem, f *Filters, opt Options, sh *stealShared) *stealWorker {
	wopt := opt
	wopt.MaxSolutions = 0 // the global budget is enforced in OnSolution
	// The futile flag is deliberately NOT wired into the Stop hook: the
	// stopClock records hook-triggered aborts as timeouts, which would
	// misclassify a *proven* no-match as a truncated (inconclusive)
	// search. Futility implies every remaining subtree is solution-free,
	// so in-flight subtrees are left to finish naturally (they find
	// nothing) and only task boundaries skip — exhaustiveness is
	// preserved, matching sequential ECF's complete/exhausted answer.
	wopt.Stop = func() bool {
		return sh.stopped.Load() || (sh.userStop != nil && sh.userStop())
	}
	wopt.OnSolution = nil
	s := newFCSearcher(p, f, wopt, nil, sh.start, false)
	// Per-worker counters start at zero: the filter-build stats are folded
	// in exactly once by the pool's final merge, not once per worker.
	s.stats = Stats{}
	if sh.optimize {
		// Workers race toward one shared bound: a local improvement first
		// tightens the fleet incumbent (recordIncumbent's monotone CAS on
		// sh.incumbent), and only the winner reaches this hook to publish
		// its mapping. The mu-guarded re-check absorbs the window between
		// winning the CAS and acquiring mu, in which a still-better
		// incumbent may have published first.
		s.bbShared = &sh.incumbent
		userImprove := opt.OnImprove
		s.opt.OnImprove = func(m Mapping, cost float64) {
			ns := time.Since(sh.start).Nanoseconds()
			if !sh.first.CompareAndSwap(0, ns) {
				for {
					cur := sh.first.Load()
					if cur <= ns || sh.first.CompareAndSwap(cur, ns) {
						break
					}
				}
			}
			sh.mu.Lock()
			if !sh.hasBest || cost < sh.bestCost {
				sh.best = append(sh.best[:0], m...)
				sh.bestCost = cost
				sh.hasBest = true
				if userImprove != nil {
					// Forwarded under mu so the caller observes a strictly
					// improving (monotone) sequence of incumbents.
					userImprove(sh.best, cost)
				}
			}
			sh.mu.Unlock()
		}
		return &stealWorker{sh: sh, s: s, nq: p.Query.NumNodes()}
	}
	s.opt.OnSolution = func(m Mapping) bool {
		n := sh.taken.Add(1)
		if sh.budget > 0 && n > sh.budget {
			return false // quota consumed by other workers
		}
		ns := time.Since(sh.start).Nanoseconds()
		if !sh.first.CompareAndSwap(0, ns) {
			for {
				cur := sh.first.Load()
				if cur <= ns || sh.first.CompareAndSwap(cur, ns) {
					break
				}
			}
		}
		sh.mu.Lock()
		sh.solutions = append(sh.solutions, m.Clone())
		sh.mu.Unlock()
		if sh.budget > 0 && n >= sh.budget {
			sh.stopped.Store(true)
			sh.close() // wake idle stealers so they observe the stop
			return false
		}
		return true
	}
	return &stealWorker{sh: sh, s: s, nq: p.Query.NumNodes()}
}

// loop claims fresh roots until the cursor runs dry, then steals
// published subtrees until the pool drains, and finally flushes the
// worker's private stats into the shared atomics. The excepted counters
// have no per-worker component: filter-build and LNS counters are never
// incremented inside a subtree search, Steals is counted at steal time
// directly on the shared atomic, and the path-mode Witness/Reach
// counters never run under ParallelECF.
//
//statsthread:fold core.Stats except EdgePairsEval, FilterEntries, ConstraintChk, Steals, WitnessProbes, WitnessHits, ReachPrunes
func (w *stealWorker) loop() {
	sh := w.sh
	for {
		if i := sh.cursor.Add(1) - 1; int(i) < len(sh.roots) {
			w.runRoot(sh.roots[i])
			sh.finishUnit()
			continue
		}
		t, ok := sh.popWait()
		if !ok {
			break
		}
		sh.steals.Add(1)
		w.runSteal(t)
		sh.finishUnit()
	}
	s := w.s
	if s.timedOut {
		sh.timedOut.Store(true)
	}
	if s.stopped {
		sh.stopped.Store(true)
	}
	sh.visited.Add(s.stats.NodesVisited)
	sh.backtracks.Add(s.stats.Backtracks)
	sh.pruneOps.Add(s.stats.PruneOps)
	sh.wipeouts.Add(s.stats.Wipeouts)
	sh.wipeoutDepth.Add(s.stats.WipeoutDepthSum)
	sh.backjumps.Add(s.stats.Backjumps)
	sh.boundCuts.Add(s.stats.BoundCuts)
	sh.incumbentUpdates.Add(s.stats.IncumbentUpdates)
	sh.boundProbes.Add(s.stats.BoundProbes)
}

// noteJump inspects a subtree's backjump target: -1 from a clean
// (non-aborted, solution-free) subtree proves the failure involved no
// assigned level at all, i.e. the instance is infeasible whichever root
// is tried — exactly when sequential FC-CBJ would stop trying root
// values. Remaining roots and stolen tasks then drain trivially.
func (w *stealWorker) noteJump(jd int) {
	if jd < 0 && !w.s.timedOut && !w.s.stopped {
		w.sh.futile.Store(true)
	}
}

// runRoot explores the subtree of one root candidate, publishing surplus
// second-level subtrees for idle workers to steal.
func (w *stealWorker) runRoot(r int32) {
	s := w.s
	if s.timedOut || s.stopped || w.sh.futile.Load() {
		return
	}
	node := s.order[0]
	s.stats.NodesVisited++
	mark, amark := len(s.trail), len(s.arena)
	s.assign[node] = r
	s.used.Set(r)
	// boundOK both prunes against the fleet incumbent and extends the
	// incremental cost stack the subtree's bound checks read — the manual
	// depth-0/1 loops here bypass expand, so they must call it themselves.
	if s.forwardCheck(0, node, r) && s.boundOK(0, r) {
		if w.nq == 1 {
			s.record()
		} else {
			w.expandRootSecondLevel(r)
		}
	}
	s.undoTo(mark, amark, 0)
	s.used.Clear(r)
	s.assign[node] = -1
}

// expandRootSecondLevel drives the depth-1 value loop manually so the
// tail of the second-level candidate list can be published to the deque;
// the kept prefix is searched inline exactly as fcSearcher.expand would.
func (w *stealWorker) expandRootSecondLevel(r int32) {
	s := w.s
	node2 := s.order[1]
	s.conf[1].Reset()
	buf := s.materialize(1, node2)
	if len(buf) > 1 {
		// Publish everything but the first candidate: the publisher
		// keeps one subtree so it is never idle, steals the rest back
		// from the shared deque alongside the other workers, and the
		// fine granularity is what splits a root whose subtree dwarfs
		// all others. A full deque just means the remainder is searched
		// inline.
		w.pub = w.pub[:0]
		for _, c := range buf[1:] {
			w.pub = append(w.pub, stealTask{root: r, second: c})
		}
		if n := w.sh.tryPublish(w.pub); n > 0 {
			// tryPublish accepted the first n published tasks, i.e.
			// buf[1:1+n]; keep the head candidate plus the unaccepted
			// tail.
			copy(buf[1:], buf[1+n:])
			buf = buf[:len(buf)-n]
		}
	}
	for _, c := range buf {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.stats.NodesVisited++
		mark, amark := len(s.trail), len(s.arena)
		s.assign[node2] = c
		s.used.Set(c)
		if s.forwardCheck(1, node2, c) && s.boundOK(1, c) {
			jd := s.search(2)
			if jd < 1 {
				s.undoTo(mark, amark, 1)
				s.used.Clear(c)
				s.assign[node2] = -1
				if !s.timedOut && !s.stopped {
					// The jump proves every sibling subtree of this root
					// solution-free: take back the published ones.
					w.sh.retract(r)
				}
				w.noteJump(jd)
				return
			}
		}
		s.undoTo(mark, amark, 1)
		s.used.Clear(c)
		s.assign[node2] = -1
	}
}

// runSteal explores one stolen second-level subtree.
func (w *stealWorker) runSteal(t stealTask) {
	s := w.s
	if s.timedOut || s.stopped || w.sh.futile.Load() {
		return
	}
	node, node2 := s.order[0], s.order[1]
	mark, amark := len(s.trail), len(s.arena)
	s.assign[node] = t.root
	s.used.Set(t.root)
	if s.forwardCheck(0, node, t.root) && s.boundOK(0, t.root) {
		s.conf[1].Reset()
		s.stats.NodesVisited++
		mark2, amark2 := len(s.trail), len(s.arena)
		s.assign[node2] = t.second
		s.used.Set(t.second)
		if s.forwardCheck(1, node2, t.second) && s.boundOK(1, t.second) {
			jd := s.search(2)
			if jd < 1 && !s.timedOut && !s.stopped {
				w.sh.retract(t.root) // siblings of a proven-dead root
			}
			w.noteJump(jd)
		}
		s.undoTo(mark2, amark2, 1)
		s.used.Clear(t.second)
		s.assign[node2] = -1
	}
	s.undoTo(mark, amark, 0)
	s.used.Clear(t.root)
	s.assign[node] = -1
}

// parallelECFStatic is the PR 1 scheme: the first level of the
// permutation tree is round-robin sharded across workers up front, each
// worker running the chronological searcher over its fixed shard. Kept
// as the ablation baseline for the work-stealing scheduler.
func parallelECFStatic(p *Problem, opt Options) *Result {
	workers := opt.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	optimize := opt.Optimize && opt.Objective.Enabled()
	if optimize {
		// No bound machinery in the chronological ablation: enumerate
		// everything (no cap — optimality needs the exhausted tree), then
		// reduce to the argmin below.
		opt.MaxSolutions = 0
		opt.OnSolution = nil
	}
	start := time.Now()
	f := BuildFilters(p, &opt)

	if p.Query.NumNodes() == 0 {
		res := &Result{
			Solutions: []Mapping{{}},
			Status:    StatusComplete,
			Exhausted: true,
			Stats:     withElapsed(f.Stats(), start),
		}
		f.release()
		return res
	}

	order := searchOrder(f, opt.Order)
	root := order[0]
	rootCands := f.Base(root)

	// Round-robin sharding keeps per-worker load roughly even when
	// candidate hardness correlates with position.
	shards := make([][]int32, workers)
	for i, r := range rootCands {
		w := i % workers
		shards[w] = append(shards[w], r)
	}

	var (
		mu        sync.Mutex
		solutions []Mapping
		first     atomic.Int64 // earliest TimeToFirst in ns, 0 = none
		taken     atomic.Int64 // global solution count toward MaxSolutions
		timedOut  atomic.Bool
		stopped   atomic.Bool
		visited   atomic.Int64
		backtrack atomic.Int64
	)
	budget := int64(opt.MaxSolutions)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := shards[w]
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wopt := opt
			wopt.MaxSolutions = 0 // global budget handled below
			wopt.OnSolution = nil
			s := newSearcher(p, f, wopt, nil, start)
			// Per-worker counters start at zero so the pool-level merge
			// folds the filter-build stats in exactly once.
			s.stats = Stats{}
			s.opt.OnSolution = func(m Mapping) bool {
				n := taken.Add(1)
				if budget > 0 && n > budget {
					return false // quota consumed by other workers
				}
				ns := time.Since(start).Nanoseconds()
				if !first.CompareAndSwap(0, ns) {
					for {
						cur := first.Load()
						if cur <= ns || first.CompareAndSwap(cur, ns) {
							break
						}
					}
				}
				mu.Lock()
				solutions = append(solutions, m.Clone())
				mu.Unlock()
				if budget > 0 && n >= budget {
					stopped.Store(true)
					return false
				}
				return true
			}
			// Restrict the root level to this worker's shard.
			s.scratch[0] = append(s.scratch[0][:0], shard...)
			s.searchShard(shard)
			if s.timedOut {
				timedOut.Store(true)
			}
			if s.stopped {
				stopped.Store(true)
			}
			visited.Add(s.stats.NodesVisited)
			backtrack.Add(s.stats.Backtracks)
		}()
	}
	wg.Wait()

	sortMappings(solutions)
	stats := withElapsed(f.Stats(), start)
	stats.NodesVisited += visited.Load()
	stats.Backtracks += backtrack.Load()
	stats.TimeToFirst = time.Duration(first.Load())

	exhausted := !timedOut.Load() && !stopped.Load()
	n := len(solutions)
	f.release()
	res := &Result{
		Solutions: solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, n),
		Stats:     stats,
	}
	if optimize {
		// solutions are already sorted, so the first-minimum argmin is
		// deterministic across worker interleavings.
		reduceToArgmin(p.Host, opt.Objective, res)
	}
	return res
}

// searchShard runs the standard DFS with the root level fixed to the given
// candidate subset.
func (s *searcher) searchShard(shard []int32) {
	if len(s.order) == 0 {
		return
	}
	node := s.order[0]
	for _, r := range shard {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.stats.NodesVisited++
		s.assign[node] = r
		s.used.Set(r)
		s.search(1)
		s.used.Clear(r)
		s.assign[node] = -1
	}
}

func withElapsed(st Stats, start time.Time) Stats {
	st.Elapsed = time.Since(start)
	return st
}

// sortMappings orders embeddings lexicographically so parallel runs return
// deterministic output regardless of worker interleaving.
func sortMappings(ms []Mapping) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// RandomMapping returns a uniformly random injective (not necessarily
// feasible) assignment, used by baselines and tests as a starting point.
func RandomMapping(p *Problem, rng *rand.Rand) Mapping {
	nr := p.Host.NumNodes()
	perm := rng.Perm(nr)
	m := make(Mapping, p.Query.NumNodes())
	for q := range m {
		m[q] = graph.NodeID(perm[q])
	}
	return m
}
