// Package core implements NETEMBED's network embedding algorithms: the
// filter-matrix construction shared by ECF and RWB, the three search
// algorithms of §V (Exhaustive search with Constraint Filtering, Random
// Walk with Backtracking, Lazy Neighborhood Search), an independent
// mapping verifier, a parallel ECF variant, and the link-to-path
// (many-to-one) extension sketched in §VIII.
//
// A Problem pairs a query (virtual) network with a hosting (real) network
// and the constraint programs that define acceptable pairings. A Mapping
// assigns every query node an injective image among host nodes such that
// every query edge lands on a host edge satisfying the edge constraint.
package core

import (
	"errors"
	"fmt"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
)

// Mapping is an embedding: Mapping[q] is the hosting-network node assigned
// to query node q. A complete mapping has one entry per query node.
type Mapping []graph.NodeID

// Clone returns a copy of m.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	copy(out, m)
	return out
}

// Problem is one embedding instance: find injective node mappings from
// Query into Host preserving adjacency under the constraints.
type Problem struct {
	Query *graph.Graph
	Host  *graph.Graph

	// EdgeConstraint is evaluated for every (query edge, host edge)
	// pairing; nil accepts all pairings (topology-only embedding).
	EdgeConstraint *expr.Program
	// NodeConstraint is evaluated for every (query node, host node)
	// pairing; nil accepts all pairings.
	NodeConstraint *expr.Program
}

// Problem construction errors.
var (
	ErrNilGraph       = errors.New("core: query and host graphs are required")
	ErrMixedDirection = errors.New("core: query and host must both be directed or both undirected")
	ErrQueryTooLarge  = errors.New("core: query has more nodes than host")
)

// NewProblem validates and assembles an injective embedding problem.
func NewProblem(query, host *graph.Graph, edgeConstraint, nodeConstraint *expr.Program) (*Problem, error) {
	p, err := newProblem(query, host, edgeConstraint, nodeConstraint)
	if err != nil {
		return nil, err
	}
	if query.NumNodes() > host.NumNodes() {
		return nil, ErrQueryTooLarge
	}
	return p, nil
}

// NewConsolidatedProblem assembles a many-to-one embedding problem for
// Consolidate: identical validation to NewProblem except that the query
// may have more nodes than the host, since node consolidation can pack
// several query nodes onto one hosting node (§VIII).
func NewConsolidatedProblem(query, host *graph.Graph, edgeConstraint, nodeConstraint *expr.Program) (*Problem, error) {
	return newProblem(query, host, edgeConstraint, nodeConstraint)
}

func newProblem(query, host *graph.Graph, edgeConstraint, nodeConstraint *expr.Program) (*Problem, error) {
	if query == nil || host == nil {
		return nil, ErrNilGraph
	}
	if query.Directed() != host.Directed() {
		return nil, ErrMixedDirection
	}
	if edgeConstraint != nil {
		if err := edgeConstraint.CheckEdgeContext(); err != nil {
			return nil, err
		}
	}
	if nodeConstraint != nil {
		if err := nodeConstraint.CheckNodeContext(); err != nil {
			return nil, err
		}
	}
	return &Problem{Query: query, Host: host, EdgeConstraint: edgeConstraint, NodeConstraint: nodeConstraint}, nil
}

// edgeOK evaluates the edge constraint for query edge qe mapped onto host
// edge re with the given orientation: query From ↦ host node rs, query To
// ↦ host node rt (rs/rt are re's endpoints, possibly swapped when the
// graphs are undirected).
func (p *Problem) edgeOK(qe *graph.Edge, re *graph.Edge, rs, rt graph.NodeID) bool {
	if p.EdgeConstraint == nil {
		return true
	}
	b := expr.EdgeBinding{
		VEdge:   qe.Attrs,
		REdge:   re.Attrs,
		VSource: p.Query.Node(qe.From).Attrs,
		VTarget: p.Query.Node(qe.To).Attrs,
		RSource: p.Host.Node(rs).Attrs,
		RTarget: p.Host.Node(rt).Attrs,
	}
	return p.EdgeConstraint.EvalEdge(&b)
}

// nodeOK evaluates the node constraint for query node q mapped onto host
// node r.
func (p *Problem) nodeOK(q, r graph.NodeID) bool {
	if p.NodeConstraint == nil {
		return true
	}
	b := expr.NodeBinding{
		VNode: p.Query.Node(q).Attrs,
		RNode: p.Host.Node(r).Attrs,
	}
	return p.NodeConstraint.EvalNode(&b)
}

// NodeFeasible reports whether mapping query node q onto host node r
// satisfies the node constraint. Exported for baselines and diagnostics.
func (p *Problem) NodeFeasible(q, r graph.NodeID) bool { return p.nodeOK(q, r) }

// EdgeFeasible reports whether query edge qe can ride on a host edge
// between rs and rt (in that orientation): the host edge must exist and
// satisfy the edge constraint. Exported for baselines and diagnostics.
func (p *Problem) EdgeFeasible(qe *graph.Edge, rs, rt graph.NodeID) bool {
	reID, ok := p.Host.EdgeBetween(rs, rt)
	if !ok {
		return false
	}
	return p.edgeOK(qe, p.Host.Edge(reID), rs, rt)
}

// Verify independently checks that m is a correct embedding for p: it is
// complete, injective, maps every query edge onto an existing host edge in
// the right orientation, and satisfies both constraint programs. It is the
// ground truth used by tests and the service layer.
func (p *Problem) Verify(m Mapping) error {
	nq := p.Query.NumNodes()
	if len(m) != nq {
		return fmt.Errorf("core: mapping has %d entries, query has %d nodes", len(m), nq)
	}
	used := make(map[graph.NodeID]graph.NodeID, nq)
	for q, r := range m {
		if r < 0 || int(r) >= p.Host.NumNodes() {
			return fmt.Errorf("core: query node %d mapped to invalid host node %d", q, r)
		}
		if prev, dup := used[r]; dup {
			return fmt.Errorf("core: host node %d assigned to both query nodes %d and %d", r, prev, q)
		}
		used[r] = graph.NodeID(q)
		if !p.nodeOK(graph.NodeID(q), r) {
			return fmt.Errorf("core: node constraint rejects %d -> %d", q, r)
		}
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		rs, rt := m[qe.From], m[qe.To]
		reID, ok := p.Host.EdgeBetween(rs, rt)
		if !ok {
			return fmt.Errorf("core: query edge %d (%d-%d) has no host edge %d-%d", i, qe.From, qe.To, rs, rt)
		}
		if !p.edgeOK(qe, p.Host.Edge(reID), rs, rt) {
			return fmt.Errorf("core: edge constraint rejects query edge %d on host edge %d", i, reID)
		}
	}
	return nil
}

// Status classifies a search outcome the way §VII-E does.
type Status int

// The §VII-E result qualities.
const (
	// StatusComplete: the search space was exhausted before any timeout;
	// the returned set is the complete set of feasible embeddings (possibly
	// empty, which is then a definitive no-match answer).
	StatusComplete Status = iota
	// StatusPartial: the search stopped early (timeout or solution cap)
	// after finding at least one feasible embedding.
	StatusPartial
	// StatusInconclusive: the search stopped early with no embedding
	// found; nothing can be concluded about feasibility.
	StatusInconclusive
)

func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusPartial:
		return "partial"
	case StatusInconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// OrderMode selects how ECF/RWB order query nodes (Lemma 1 ablations).
type OrderMode int

// Node ordering heuristics.
const (
	// OrderAscending realizes Lemma 1 the way the paper's linear scaling
	// requires: the seed is the node with the fewest base candidates, and
	// every subsequent node is chosen among those adjacent to the ordered
	// prefix (most prefix edges first — the strongest filter
	// intersection — then fewest base candidates). Keeping the prefix
	// connected guarantees each placement is constrained by at least one
	// filter row; a pure global sort can schedule mutually unrelated
	// nodes first, whose unconstrained placements explode the tree. The
	// default.
	OrderAscending OrderMode = iota
	// OrderNatural keeps the query's node numbering (ablation).
	OrderNatural
	// OrderDescending inverts the candidate-count sort (worst case,
	// ablation).
	OrderDescending
	// OrderUnconnected is the literal global ascending sort without the
	// connectivity refinement (ablation — demonstrates the blowup).
	OrderUnconnected
)

// SearchEngine selects the inner-search implementation behind
// ECF/RWB/DynamicECF/ParallelECF (and the forward-checked candidate
// pruning inside LNS and Consolidate).
type SearchEngine int

// Inner-search engines.
const (
	// SearchFC is the incremental forward-checking engine with
	// conflict-directed backjumping and (for ParallelECF) work-stealing
	// parallel search: live domain bitsets per unassigned query node,
	// AND-pruned on assignment and restored from a trail on backtrack,
	// with dead-ends jumping past levels that contributed nothing to the
	// failure. The default.
	SearchFC SearchEngine = iota
	// SearchChrono is the chronological DFS that recomputes candidate
	// sets per visit (and the static first-level sharding in
	// ParallelECF). Kept as the property-test oracle and ablation
	// baseline; both engines enumerate identical solution sets.
	SearchChrono
)

// Repr selects the candidate-set representation BuildFilters stores in
// the filter tables and the search loops intersect.
type Repr int

// Candidate-set representations.
const (
	// ReprAuto chooses by host size and adjacency density: dense bitsets
	// when rows are only a handful of words or the host adjacency is
	// dense enough that word-parallel AND beats merging sorted slices,
	// sorted slices otherwise. The default.
	ReprAuto Repr = iota
	// ReprSlice forces sorted []int32 rows (the memory-lean sparse
	// representation; also the ablation baseline for the bitset path).
	ReprSlice
	// ReprBitset forces dense bitset rows.
	ReprBitset
)

// Options tune a search run. The zero value asks for all solutions with no
// timeout using the paper's default heuristics.
type Options struct {
	// Timeout bounds the search (0 = unbounded). Results found before the
	// deadline are returned with StatusPartial/StatusInconclusive.
	Timeout time.Duration
	// MaxSolutions stops the search after this many embeddings (0 = all).
	MaxSolutions int
	// Order selects the ECF/RWB node ordering heuristic.
	Order OrderMode // cachekey:ignore not settable from a service request; constant per process
	// Seed drives RWB's randomized candidate choice.
	Seed int64
	// LooseRoot uses the paper's literal formula (1) (union of filter
	// cells) for base candidate sets instead of the tighter per-neighbor
	// intersection refinement. Ablation knob; both are complete.
	LooseRoot bool // cachekey:ignore ablation knob, not settable from a service request
	// NoDegreeFilter disables the host-degree >= query-degree candidate
	// filter. Ablation knob; the filter never removes feasible embeddings.
	NoDegreeFilter bool // cachekey:ignore ablation knob, not settable from a service request
	// OnSolution, when non-nil, streams each embedding as it is found; the
	// mapping is only valid during the call (clone to retain). Returning
	// false stops the search (the result is then StatusPartial).
	OnSolution func(Mapping) bool // cachekey:ignore streaming hook, not settable from a service request
	// Stop, when non-nil, is polled on the same cadence as the timeout
	// deadline (every few hundred expansions); returning true halts the
	// search as if the deadline had passed, with whatever solutions were
	// found so far. It is the cooperative-cancellation hook: wrap a
	// context (`func() bool { return ctx.Err() != nil }`) or an atomic
	// flag to stop abandoned searches without waiting out their timeout.
	// The hook must be safe for concurrent use when Workers > 1.
	Stop func() bool
	// Workers > 1 parallelizes filter construction across that many
	// goroutines (one query edge per task) and sizes the ParallelECF
	// worker pool. Zero keeps everything sequential and deterministic.
	Workers int // cachekey:ignore parallelism cannot change the (sorted) result set
	// Index, when non-nil, is a prebuilt host-capability index
	// (internal/index) for the hosting network BuildFilters can consult
	// instead of rescanning the host: node admissibility intersects
	// degree strata, and topology-only filter tables (no edge
	// constraint) are assembled from adjacency bitsets. The index must
	// describe the Problem's host graph — same node universe, same
	// orientation — or it is ignored; both paths provably produce
	// identical candidate sets (the full scan stays the oracle in the
	// property tests). Index-backed filters always carry the bitset
	// representation, so ReprSlice also falls back to the scan.
	Index *index.Index
	// Repr selects the candidate-set representation for the ECF/RWB
	// filter tables. Both representations provably enumerate identical
	// solution sets; the choice only trades speed against memory.
	Repr Repr // cachekey:ignore representation choice provably enumerates identical solutions
	// Engine selects the inner-search implementation (default SearchFC,
	// the forward-checking + backjumping engine). SearchChrono keeps the
	// chronological recompute-per-visit searcher for oracle tests and
	// ablation benchmarks; both enumerate identical solution sets.
	Engine SearchEngine // cachekey:ignore both engines provably enumerate identical solutions
	// Objective selects the cost function an optimizing search minimizes
	// (see Objective). It is ignored unless Optimize is set.
	Objective Objective
	// Optimize turns the enumerating search into branch-and-bound: the
	// result carries the single minimum-Objective embedding (plus its
	// cost in Result.Cost) instead of the full solution set, with
	// StatusComplete doubling as the proof of optimality. MaxSolutions is
	// ignored (optimality needs the exhausted tree); Timeout/Stop still
	// truncate, returning the best incumbent with StatusPartial.
	// OnImprove streams incumbent improvements.
	Optimize bool
	// OnImprove, when non-nil, receives every incumbent improvement of an
	// optimizing search: the strictly-cheaper mapping (valid only during
	// the call — clone to retain) and its objective cost. It is the
	// anytime hook behind GET /jobs/{id} best-so-far polling. The hook
	// must be safe for concurrent use when Workers > 1.
	OnImprove func(Mapping, float64)
}

// Stats reports search effort counters.
type Stats struct {
	FilterBuild      time.Duration // time spent building filter matrices (ECF/RWB)
	EdgePairsEval    int64         // constraint evaluations during filter build
	FilterEntries    int64         // total candidate entries stored in F
	NodesVisited     int64         // permutation-tree nodes expanded
	Backtracks       int64         // dead ends requiring backtracking
	ConstraintChk    int64         // on-demand constraint evaluations (LNS)
	PruneOps         int64         // forward-checking domain AND-prunes
	Wipeouts         int64         // future-domain wipeouts caught before descending
	WipeoutDepthSum  int64         // sum of depths at which wipeouts fired
	Backjumps        int64         // conflict-directed jumps skipping ≥1 level
	Steals           int64         // subtrees stolen by idle parallel workers
	WitnessProbes    int64         // path-mode witness DFS enumerations actually run
	WitnessHits      int64         // path-mode witness answers served from the memo
	ReachPrunes      int64         // witness probes rejected by the reachability/bound oracle
	BoundCuts        int64         // branch-and-bound subtrees cut by partial cost + lower bounds
	IncumbentUpdates int64         // strictly-improving incumbents found by an optimizing search
	BoundProbes      int64         // per-node lower-bound recomputations (postings/domain probes)
	TimeToFirst      time.Duration // elapsed time when the first solution appeared
	Elapsed          time.Duration // total search time, filter build included
}

// Result is the outcome of one search run.
type Result struct {
	Solutions []Mapping
	Status    Status
	Exhausted bool // the whole search space was covered
	// Cost is the objective value of Solutions[0] when the run optimized
	// (Options.Optimize with a non-empty solution set); zero otherwise.
	Cost  float64
	Stats Stats
}

// classify derives the §VII-E status from how the search ended.
func classify(exhausted bool, nSolutions int) Status {
	switch {
	case exhausted:
		return StatusComplete
	case nSolutions > 0:
		return StatusPartial
	default:
		return StatusInconclusive
	}
}
