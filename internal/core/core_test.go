package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// delayWindow is the constraint used by most experiments: the hosting
// link's measured delay range must lie inside the query link's window.
var delayWindow = expr.MustCompile(
	"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")

// avgWindow accepts hosting links whose average delay is inside the query
// window, the clique-experiment constraint.
var avgWindow = expr.MustCompile(
	"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")

// naiveEmbeddings enumerates every feasible embedding by unpruned
// backtracking over all injective assignments in natural node order. It is
// the reference implementation for completeness tests; only run it on tiny
// instances.
func naiveEmbeddings(p *Problem) []Mapping {
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	var out []Mapping
	assign := make(Mapping, nq)
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, nr)
	var rec func(q int)
	rec = func(q int) {
		if q == nq {
			out = append(out, assign.Clone())
			return
		}
		for r := 0; r < nr; r++ {
			if used[r] {
				continue
			}
			assign[q] = graph.NodeID(r)
			used[r] = true
			if partialOK(p, assign, q) {
				rec(q + 1)
			}
			used[r] = false
			assign[q] = -1
		}
	}
	rec(0)
	return out
}

// partialOK checks constraints touching query node q against the partial
// assignment of nodes 0..q.
func partialOK(p *Problem, m Mapping, q int) bool {
	qid := graph.NodeID(q)
	if !p.nodeOK(qid, m[q]) {
		return false
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		if qe.From != qid && qe.To != qid {
			continue
		}
		other := qe.From
		if other == qid {
			other = qe.To
		}
		if int(other) > q || m[other] < 0 {
			continue // the later endpoint will check this edge
		}
		rs, rt := m[qe.From], m[qe.To]
		reID, ok := p.Host.EdgeBetween(rs, rt)
		if !ok || !p.edgeOK(qe, p.Host.Edge(reID), rs, rt) {
			return false
		}
	}
	return true
}

// mappingKey canonicalizes an embedding for set comparison.
func mappingKey(m Mapping) string {
	return fmt.Sprint([]graph.NodeID(m))
}

func solutionSet(ms []Mapping) map[string]bool {
	s := make(map[string]bool, len(ms))
	for _, m := range ms {
		s[mappingKey(m)] = true
	}
	return s
}

func sameSolutionSets(t *testing.T, label string, got, want []Mapping) {
	t.Helper()
	gs, ws := solutionSet(got), solutionSet(want)
	if len(gs) != len(got) {
		t.Errorf("%s: returned duplicate embeddings", label)
	}
	if len(gs) != len(ws) {
		t.Errorf("%s: %d embeddings, want %d", label, len(gs), len(ws))
		return
	}
	for k := range ws {
		if !gs[k] {
			t.Errorf("%s: missing embedding %s", label, k)
		}
	}
}

// smallProblem builds a random small instance with a delay-window
// constraint for cross-checking against the naive enumerator.
func smallProblem(t *testing.T, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	host := graph.NewUndirected()
	nr := 5 + rng.Intn(4)
	for i := 0; i < nr; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(4))))
	}
	for u := 0; u < nr; u++ {
		for v := u + 1; v < nr; v++ {
			if rng.Float64() < 0.5 {
				d := 1 + rng.Float64()*99
				host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.
					SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.2))
			}
		}
	}
	query := graph.NewUndirected()
	nq := 2 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		query.AddNode("", nil)
	}
	// Random connected-ish query with loose/tight windows.
	for i := 1; i < nq; i++ {
		lo, hi := rng.Float64()*40, 60+rng.Float64()*80
		query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), graph.Attrs{}.
			SetNum("minDelay", lo).SetNum("maxDelay", hi))
	}
	if nq > 2 && rng.Float64() < 0.5 {
		lo, hi := rng.Float64()*40, 60+rng.Float64()*80
		query.AddEdge(0, graph.NodeID(nq-1), graph.Attrs{}.
			SetNum("minDelay", lo).SetNum("maxDelay", hi))
	}
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	und, dir := graph.NewUndirected(), graph.NewDirected()
	und.AddNodes(2)
	dir.AddNodes(2)
	if _, err := NewProblem(nil, und, nil, nil); err != ErrNilGraph {
		t.Errorf("nil graph: %v", err)
	}
	if _, err := NewProblem(und, dir, nil, nil); err != ErrMixedDirection {
		t.Errorf("mixed direction: %v", err)
	}
	big := graph.NewUndirected()
	big.AddNodes(3)
	if _, err := NewProblem(big, und, nil, nil); err != ErrQueryTooLarge {
		t.Errorf("query too large: %v", err)
	}
	nodeProg := expr.MustCompile("vNode.cpu <= rNode.cpu")
	if _, err := NewProblem(und, und.Clone(), nodeProg, nil); err == nil {
		t.Error("node program accepted as edge constraint")
	}
	edgeProg := expr.MustCompile("vEdge.d < 1")
	if _, err := NewProblem(und, und.Clone(), nil, edgeProg); err == nil {
		t.Error("edge program accepted as node constraint")
	}
	if _, err := NewProblem(und, und.Clone(), edgeProg, nodeProg); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestVerify(t *testing.T) {
	host := topo.Clique(4)
	for i := 0; i < host.NumEdges(); i++ {
		host.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.
			SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	query := topo.Line(3)
	topo.SetDelayWindow(query, 5, 25)
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(Mapping{0, 1, 2}); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	if err := p.Verify(Mapping{0, 1}); err == nil {
		t.Error("short mapping accepted")
	}
	if err := p.Verify(Mapping{0, 0, 1}); err == nil {
		t.Error("non-injective mapping accepted")
	}
	if err := p.Verify(Mapping{0, 1, 99}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
	// Violating constraint: tighten the query window.
	topo.SetDelayWindow(query, 15, 18)
	if err := p.Verify(Mapping{0, 1, 2}); err == nil {
		t.Error("constraint-violating mapping accepted")
	}
}

func TestAlgorithmsMatchNaiveReference(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := smallProblem(t, seed)
		want := naiveEmbeddings(p)

		ecf := ECF(p, Options{})
		if ecf.Status != StatusComplete || !ecf.Exhausted {
			t.Fatalf("seed %d: ECF status %v", seed, ecf.Status)
		}
		sameSolutionSets(t, fmt.Sprintf("seed %d ECF", seed), ecf.Solutions, want)

		lns := LNS(p, Options{})
		if lns.Status != StatusComplete {
			t.Fatalf("seed %d: LNS status %v", seed, lns.Status)
		}
		sameSolutionSets(t, fmt.Sprintf("seed %d LNS", seed), lns.Solutions, want)

		dyn := DynamicECF(p, Options{})
		if dyn.Status != StatusComplete {
			t.Fatalf("seed %d: DynamicECF status %v", seed, dyn.Status)
		}
		sameSolutionSets(t, fmt.Sprintf("seed %d DynamicECF", seed), dyn.Solutions, want)

		rwb := RWB(p, Options{MaxSolutions: 1 << 30, Seed: seed})
		sameSolutionSets(t, fmt.Sprintf("seed %d RWB", seed), rwb.Solutions, want)

		par := ParallelECF(p, Options{Workers: 4})
		sameSolutionSets(t, fmt.Sprintf("seed %d ParallelECF", seed), par.Solutions, want)

		for _, m := range ecf.Solutions {
			if err := p.Verify(m); err != nil {
				t.Fatalf("seed %d: ECF returned invalid mapping: %v", seed, err)
			}
		}
		for _, m := range lns.Solutions {
			if err := p.Verify(m); err != nil {
				t.Fatalf("seed %d: LNS returned invalid mapping: %v", seed, err)
			}
		}
	}
}

func TestOrderAndFilterVariantsAgree(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		base := ECF(p, Options{})
		for _, opt := range []Options{
			{Order: OrderNatural},
			{Order: OrderDescending},
			{Order: OrderUnconnected},
			{LooseRoot: true},
			{NoDegreeFilter: true},
			{Order: OrderNatural, LooseRoot: true, NoDegreeFilter: true},
		} {
			got := ECF(p, opt)
			sameSolutionSets(t, fmt.Sprintf("seed %d opts %+v", seed, opt), got.Solutions, base.Solutions)
		}
	}
}

func TestPlantedSubgraphAlwaysFound(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 60}, rand.New(rand.NewSource(1)))
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, plant, err := topo.Subgraph(host, 8, 11, rng)
		if err != nil {
			t.Fatal(err)
		}
		topo.WidenDelayWindows(q, 0.05)
		p, err := NewProblem(q, host, delayWindow, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() *Result{
			"ECF":     func() *Result { return ECF(p, Options{MaxSolutions: 1}) },
			"RWB":     func() *Result { return RWB(p, Options{Seed: seed}) },
			"LNS":     func() *Result { return LNS(p, Options{MaxSolutions: 1}) },
			"Dynamic": func() *Result { return DynamicECF(p, Options{MaxSolutions: 1}) },
		} {
			res := run()
			if len(res.Solutions) == 0 {
				t.Fatalf("seed %d: %s missed the planted embedding", seed, name)
			}
			if err := p.Verify(res.Solutions[0]); err != nil {
				t.Fatalf("seed %d: %s invalid: %v", seed, name, err)
			}
		}
		// The planted mapping itself must verify.
		if err := p.Verify(Mapping(plant)); err != nil {
			t.Fatalf("seed %d: planted mapping invalid: %v", seed, err)
		}
	}
}

func TestInfeasibleQueryIsDefinitiveNoMatch(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(2)))
	rng := rand.New(rand.NewSource(3))
	q, _, err := topo.Subgraph(host, 6, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.05)
	topo.MakeInfeasible(q, 2, rng)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{
		"ECF": ECF(p, Options{}),
		"RWB": RWB(p, Options{}),
		"LNS": LNS(p, Options{}),
	} {
		if len(res.Solutions) != 0 {
			t.Errorf("%s: found %d embeddings of an infeasible query", name, len(res.Solutions))
		}
		if res.Status != StatusComplete || !res.Exhausted {
			t.Errorf("%s: status %v exhausted %v, want definitive no-match", name, res.Status, res.Exhausted)
		}
	}
}

func TestMaxSolutionsAndStreaming(t *testing.T) {
	host := topo.Clique(6)
	query := topo.Ring(4)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := ECF(p, Options{})
	// C(6,4) node subsets × ring embeddings: just require "many".
	if len(all.Solutions) < 40 {
		t.Fatalf("expected many ring embeddings in K6, got %d", len(all.Solutions))
	}
	capped := ECF(p, Options{MaxSolutions: 7})
	if len(capped.Solutions) != 7 {
		t.Errorf("MaxSolutions: got %d", len(capped.Solutions))
	}
	if capped.Status != StatusPartial {
		t.Errorf("capped status = %v, want partial", capped.Status)
	}

	var streamed int
	res := ECF(p, Options{OnSolution: func(m Mapping) bool {
		streamed++
		return streamed < 5
	}})
	if streamed != 5 {
		t.Errorf("streaming stopped after %d", streamed)
	}
	if len(res.Solutions) != 0 {
		t.Error("OnSolution should suppress solution collection")
	}
	if res.Status != StatusPartial {
		t.Errorf("streamed status = %v", res.Status)
	}
}

func TestTimeoutClassification(t *testing.T) {
	// A large under-constrained clique query forces a long enumeration.
	host := topo.Clique(24)
	query := topo.Clique(10)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{Timeout: 20 * time.Millisecond})
	if res.Exhausted {
		t.Skip("machine too fast to exercise the timeout on this instance")
	}
	if res.Status != StatusPartial && res.Status != StatusInconclusive {
		t.Errorf("status = %v after timeout", res.Status)
	}
	if res.Status == StatusPartial && len(res.Solutions) == 0 {
		t.Error("partial status with no solutions")
	}
}

func TestNodeConstraint(t *testing.T) {
	host := topo.Clique(5)
	for i := 0; i < host.NumNodes(); i++ {
		host.Node(graph.NodeID(i)).Attrs = graph.Attrs{}.SetNum("cpu", float64(i))
	}
	query := topo.Line(2)
	query.Node(0).Attrs = graph.Attrs{}.SetNum("cpu", 3)
	query.Node(1).Attrs = graph.Attrs{}.SetNum("cpu", 0)
	nodeC := expr.MustCompile("vNode.cpu <= rNode.cpu")
	p, err := NewProblem(query, host, nil, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{})
	// Query node 0 needs cpu>=3: hosts {3,4}. Node 1 needs cpu>=0: any
	// remaining. 2*4 = 8 embeddings.
	if len(res.Solutions) != 8 {
		t.Errorf("embeddings = %d, want 8", len(res.Solutions))
	}
	for _, m := range res.Solutions {
		if m[0] < 3 {
			t.Errorf("node constraint violated: %v", m)
		}
	}
	lns := LNS(p, Options{})
	sameSolutionSets(t, "LNS node constraint", lns.Solutions, res.Solutions)
}

func TestDirectedEmbedding(t *testing.T) {
	// Host: directed triangle 0->1->2->0 plus reverse chord 1->0.
	host := graph.NewDirected()
	host.AddNodes(3)
	host.MustAddEdge(0, 1, nil)
	host.MustAddEdge(1, 2, nil)
	host.MustAddEdge(2, 0, nil)
	host.MustAddEdge(1, 0, nil)
	// Query: directed path a->b.
	query := graph.NewDirected()
	query.AddNodes(2)
	query.MustAddEdge(0, 1, nil)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEmbeddings(p) // 4 directed host arcs -> 4 embeddings
	if len(want) != 4 {
		t.Fatalf("naive found %d, want 4", len(want))
	}
	sameSolutionSets(t, "ECF directed", ECF(p, Options{}).Solutions, want)
	sameSolutionSets(t, "LNS directed", LNS(p, Options{}).Solutions, want)

	// Query requiring a 2-cycle: only 0<->1 qualifies.
	q2 := graph.NewDirected()
	q2.AddNodes(2)
	q2.MustAddEdge(0, 1, nil)
	q2.MustAddEdge(1, 0, nil)
	p2, err := NewProblem(q2, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want2 := naiveEmbeddings(p2)
	if len(want2) != 2 {
		t.Fatalf("naive 2-cycle found %d, want 2", len(want2))
	}
	sameSolutionSets(t, "ECF 2-cycle", ECF(p2, Options{}).Solutions, want2)
	sameSolutionSets(t, "LNS 2-cycle", LNS(p2, Options{}).Solutions, want2)
}

func TestDirectedRandomAgainstNaive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		host := graph.NewDirected()
		nr := 4 + rng.Intn(4)
		host.AddNodes(nr)
		for u := 0; u < nr; u++ {
			for v := 0; v < nr; v++ {
				if u != v && rng.Float64() < 0.4 {
					host.AddEdge(graph.NodeID(u), graph.NodeID(v), nil)
				}
			}
		}
		query := graph.NewDirected()
		nq := 2 + rng.Intn(2)
		query.AddNodes(nq)
		for i := 1; i < nq; i++ {
			if rng.Intn(2) == 0 {
				query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), nil)
			} else {
				query.MustAddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), nil)
			}
		}
		p, err := NewProblem(query, host, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveEmbeddings(p)
		sameSolutionSets(t, fmt.Sprintf("seed %d ECF", seed), ECF(p, Options{}).Solutions, want)
		sameSolutionSets(t, fmt.Sprintf("seed %d LNS", seed), LNS(p, Options{}).Solutions, want)
	}
}

func TestDisconnectedQuery(t *testing.T) {
	host := topo.Clique(5)
	query := graph.NewUndirected()
	query.AddNodes(4)
	query.MustAddEdge(0, 1, nil)
	query.MustAddEdge(2, 3, nil)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveEmbeddings(p) // 5*4*3*2 = 120, all injective pairs of edges
	sameSolutionSets(t, "ECF disconnected", ECF(p, Options{}).Solutions, want)
	sameSolutionSets(t, "LNS disconnected", LNS(p, Options{}).Solutions, want)
}

func TestSingleNodeAndEmptyQuery(t *testing.T) {
	host := topo.Ring(4)
	single := graph.NewUndirected()
	single.AddNode("only", nil)
	p, err := NewProblem(single, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{})
	if len(res.Solutions) != 4 {
		t.Errorf("single-node embeddings = %d, want 4", len(res.Solutions))
	}
	lns := LNS(p, Options{})
	if len(lns.Solutions) != 4 {
		t.Errorf("LNS single-node embeddings = %d, want 4", len(lns.Solutions))
	}

	empty := graph.NewUndirected()
	pe, err := NewProblem(empty, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := ECF(pe, Options{}); len(res.Solutions) != 1 || len(res.Solutions[0]) != 0 {
		t.Errorf("empty query: %v", res.Solutions)
	}
	if res := ParallelECF(pe, Options{}); len(res.Solutions) != 1 {
		t.Errorf("parallel empty query: %v", res.Solutions)
	}
}

func TestParallelECFEqualsSequentialOnTrace(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 50}, rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	q, _, err := topo.Subgraph(host, 7, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.15)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := ECF(p, Options{})
	for _, workers := range []int{1, 2, 4, 8} {
		par := ParallelECF(p, Options{Workers: workers})
		sameSolutionSets(t, fmt.Sprintf("workers=%d", workers), par.Solutions, seq.Solutions)
		if par.Status != StatusComplete {
			t.Errorf("workers=%d status %v", workers, par.Status)
		}
	}
	// Capped parallel run respects the global budget.
	if len(seq.Solutions) > 3 {
		capped := ParallelECF(p, Options{Workers: 4, MaxSolutions: 3})
		if len(capped.Solutions) != 3 {
			t.Errorf("parallel cap: %d solutions", len(capped.Solutions))
		}
		for _, m := range capped.Solutions {
			if err := p.Verify(m); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestRWBIsSeedDeterministic(t *testing.T) {
	p := smallProblem(t, 99)
	a := RWB(p, Options{Seed: 42})
	b := RWB(p, Options{Seed: 42})
	if len(a.Solutions) != len(b.Solutions) {
		t.Fatal("same seed, different outcomes")
	}
	for i := range a.Solutions {
		if mappingKey(a.Solutions[i]) != mappingKey(b.Solutions[i]) {
			t.Fatal("same seed, different solutions")
		}
	}
}

func TestCliqueQueryOnTraceWindow(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 60}, rand.New(rand.NewSource(6)))
	q := topo.Clique(4)
	topo.SetDelayWindow(q, 10, 100)
	p, err := NewProblem(q, host, avgWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := LNS(p, Options{MaxSolutions: 1, Timeout: 5 * time.Second})
	if len(res.Solutions) == 1 {
		if err := p.Verify(res.Solutions[0]); err != nil {
			t.Errorf("LNS clique solution invalid: %v", err)
		}
	}
	// ECF must agree with LNS about feasibility.
	ecf := ECF(p, Options{MaxSolutions: 1, Timeout: 5 * time.Second})
	if (len(res.Solutions) == 0 && res.Exhausted) != (len(ecf.Solutions) == 0 && ecf.Exhausted) {
		t.Errorf("LNS and ECF disagree on clique feasibility")
	}
}

func TestStatsPopulated(t *testing.T) {
	p := smallProblem(t, 7)
	res := ECF(p, Options{})
	if res.Stats.EdgePairsEval == 0 && p.Query.NumEdges() > 0 {
		t.Error("EdgePairsEval = 0")
	}
	if res.Stats.Elapsed <= 0 {
		t.Error("Elapsed not set")
	}
	if len(res.Solutions) > 0 && res.Stats.TimeToFirst <= 0 {
		t.Error("TimeToFirst not set despite solutions")
	}
	lns := LNS(p, Options{})
	if len(lns.Solutions) > 0 && lns.Stats.ConstraintChk == 0 {
		t.Error("LNS ConstraintChk = 0 with solutions present")
	}
}

func TestStatusString(t *testing.T) {
	if StatusComplete.String() != "complete" ||
		StatusPartial.String() != "partial" ||
		StatusInconclusive.String() != "inconclusive" {
		t.Error("status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string wrong")
	}
}

func TestSortMappingsDeterminism(t *testing.T) {
	ms := []Mapping{{2, 1}, {1, 2}, {1, 0}}
	sortMappings(ms)
	if !sort.SliceIsSorted(ms, func(i, j int) bool {
		return mappingKey(ms[i]) < mappingKey(ms[j])
	}) {
		t.Errorf("not sorted: %v", ms)
	}
}

func TestRandomMappingInjective(t *testing.T) {
	host := topo.Clique(10)
	query := topo.Ring(6)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m := RandomMapping(p, rng)
		seen := map[graph.NodeID]bool{}
		for _, r := range m {
			if seen[r] {
				t.Fatal("RandomMapping not injective")
			}
			seen[r] = true
		}
	}
}
