package core

import (
	"fmt"
	"time"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/sets"
)

// This file implements the second many-to-one extension sketched in §VIII
// ("allow many-to-one mappings between virtual and real nodes"): node
// consolidation. Several query nodes may share one hosting node provided
// the host's capacity covers their summed demand, the way one physical
// testbed machine hosts several virtual nodes of an experiment. A query
// edge whose endpoints are co-located rides the host's internal fabric —
// a synthetic loopback link — instead of a real network edge.
//
// The companion extension, mapping one query edge onto a multi-hop host
// path, lives in pathmap.go; the two compose through the service layer.

// ConsolidateOptions tunes the many-to-one node-sharing search.
type ConsolidateOptions struct {
	// CapacityAttr names the hosting-node attribute holding its capacity
	// (default "capacity"). Hosts missing the attribute get
	// DefaultCapacity.
	CapacityAttr string
	// DemandAttr names the query-node attribute holding its resource
	// demand (default "demand"). Query nodes missing it demand 1.
	DemandAttr string
	// DefaultCapacity applies to hosts without the capacity attribute
	// (default 1, which keeps unannotated hosts injective).
	DefaultCapacity float64
	// Loopback is the attribute bag a query edge is checked against when
	// both endpoints share a host. The default models an intra-machine
	// link: minDelay/avgDelay/maxDelay 0 and loopback=true, so delay
	// upper bounds pass and minimum-delay demands fail, and constraints
	// can opt out entirely with "!has(rEdge.loopback)".
	Loopback graph.Attrs
}

func (c ConsolidateOptions) withDefaults() ConsolidateOptions {
	if c.CapacityAttr == "" {
		c.CapacityAttr = "capacity"
	}
	if c.DemandAttr == "" {
		c.DemandAttr = "demand"
	}
	if c.DefaultCapacity <= 0 {
		c.DefaultCapacity = 1
	}
	if c.Loopback == nil {
		c.Loopback = graph.Attrs{}.
			SetNum("minDelay", 0).
			SetNum("avgDelay", 0).
			SetNum("maxDelay", 0).
			SetBool("loopback", true)
	}
	return c
}

// Consolidate searches for many-to-one embeddings of p.Query into p.Host:
// node mappings that satisfy the node and edge constraints where hosts
// may be reused up to their capacity. With every capacity at 1 it
// degenerates to the injective problem and returns exactly the ECF
// solution set. The search is complete and correct in the paper's sense:
// every feasible consolidated mapping is enumerated (subject to
// Options.Timeout/MaxSolutions), and every reported mapping verifies.
func Consolidate(p *Problem, opt Options, copt ConsolidateOptions) *Result {
	copt = copt.withDefaults()
	start := time.Now()
	s := &consSearcher{
		p:       p,
		opt:     opt,
		copt:    copt,
		started: start,
	}
	s.init()
	if s.feasibleSetup {
		s.search(0)
	}
	exhausted := !s.timedOut && !s.stopped
	res := &Result{
		Solutions: s.solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, s.nSol),
		Stats:     s.stats,
	}
	res.Stats.Elapsed = time.Since(start)
	return res
}

// consSearcher is the DFS state for Consolidate. Unlike the injective
// searcher it tracks remaining host capacity instead of a used-bit set,
// and checks edges directly against the host adjacency (co-location makes
// the precomputed filter tables unsound: they only know about real edges).
type consSearcher struct {
	p    *Problem
	opt  Options
	copt ConsolidateOptions

	order     []graph.NodeID   // query nodes in connected ascending order
	preNbrs   [][]graph.NodeID // earlier-placed query neighbors per depth
	base      []sets.Set       // node-constraint-feasible hosts per query node
	baseB     []*sets.Bitset   // the same sets as bitsets
	demand    []float64
	remaining []float64
	minDemand float64

	// saturated marks hosts whose remaining capacity has dropped below
	// the smallest query demand: no further node can land there, so the
	// candidate materialization subtracts them word-wise instead of
	// probing remaining[] per host.
	saturated *sets.Bitset
	candBits  *sets.Bitset // scratch for materializing candidates
	scratch   [][]int32    // per-depth candidate buffers

	// Forward-checking state (SearchFC engine only): live domains per
	// query node, pruned when an earlier neighbor is placed — a later
	// neighbor must land on the placed host's adjacency or co-locate on
	// the host itself — with trail-backed undo and an early wipeout
	// check. Edge constraints stay lazily evaluated per candidate, so
	// the pruning is topology-only and provably solution-preserving.
	fc       bool
	ds       *domains
	adj      *hostAdj         // host adjacency ∪ self (co-location)
	postNbrs [][]graph.NodeID // later-placed query neighbors per depth

	assign        Mapping
	feasibleSetup bool

	stopClock
	stopped bool

	started   time.Time
	solutions []Mapping
	nSol      int
	stats     Stats
}

func (s *consSearcher) init() {
	q, h := s.p.Query, s.p.Host
	nq, nh := q.NumNodes(), h.NumNodes()

	s.demand = make([]float64, nq)
	for i := 0; i < nq; i++ {
		d, ok := q.Node(graph.NodeID(i)).Attrs.Float(s.copt.DemandAttr)
		if !ok || d <= 0 {
			d = 1
		}
		s.demand[i] = d
	}
	s.remaining = make([]float64, nh)
	for r := 0; r < nh; r++ {
		c, ok := h.Node(graph.NodeID(r)).Attrs.Float(s.copt.CapacityAttr)
		if !ok || c <= 0 {
			c = s.copt.DefaultCapacity
		}
		s.remaining[r] = c
	}

	if nq > 0 {
		s.minDemand = s.demand[0]
		for _, d := range s.demand[1:] {
			if d < s.minDemand {
				s.minDemand = d
			}
		}
	}

	// Base candidates: the node constraint plus the capacity sanity bound
	// (a host below the node's own demand can never help).
	s.base = make([]sets.Set, nq)
	s.baseB = make([]*sets.Bitset, nq)
	for i := 0; i < nq; i++ {
		for r := 0; r < nh; r++ {
			if s.remaining[r] >= s.demand[i] && s.p.nodeOK(graph.NodeID(i), graph.NodeID(r)) {
				s.base[i] = append(s.base[i], graph.NodeID(r))
			}
		}
		if len(s.base[i]) == 0 {
			return // some query node has no host at all: definitive no-match
		}
		s.baseB[i] = sets.FromSet(nh, s.base[i])
	}
	s.saturated = sets.NewBitset(nh)
	for r := 0; r < nh; r++ {
		if s.remaining[r] < s.minDemand {
			s.saturated.Set(graph.NodeID(r))
		}
	}
	s.candBits = sets.NewBitset(nh)
	s.scratch = make([][]int32, nq)

	s.order = consOrder(q, s.base)
	pos := make([]int, nq)
	for d, n := range s.order {
		pos[n] = d
	}
	s.preNbrs = make([][]graph.NodeID, nq)
	s.postNbrs = make([][]graph.NodeID, nq)
	for d, n := range s.order {
		seen := map[graph.NodeID]bool{}
		add := func(nbr graph.NodeID) {
			if seen[nbr] || pos[nbr] == d {
				return
			}
			seen[nbr] = true
			if pos[nbr] < d {
				s.preNbrs[d] = append(s.preNbrs[d], nbr)
			} else {
				s.postNbrs[d] = append(s.postNbrs[d], nbr)
			}
		}
		for _, a := range q.Arcs(n) {
			add(a.To)
		}
		if q.Directed() {
			for _, a := range q.InArcs(n) {
				add(a.To)
			}
		}
	}

	s.fc = s.opt.Engine != SearchChrono
	if s.fc {
		s.ds = newDomains(nh, nq)
		for i := 0; i < nq; i++ {
			s.ds.dom[i].CopyFrom(s.baseB[i])
			s.ds.count[i] = int32(len(s.base[i]))
		}
		s.adj = newHostAdj(h, true)
	}

	s.assign = make(Mapping, nq)
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.arm(s.started, s.opt.Timeout, s.opt.Stop)
	s.feasibleSetup = true
}

// consOrder is the consolidation analogue of connectedAscendingOrder:
// seed with the fewest-candidates node, then grow along query edges.
func consOrder(q *graph.Graph, base []sets.Set) []graph.NodeID {
	nq := q.NumNodes()
	picked := make([]bool, nq)
	prefixEdges := make([]int, nq)
	order := make([]graph.NodeID, 0, nq)

	better := func(i, best graph.NodeID) bool {
		if best < 0 {
			return true
		}
		ci, cb := prefixEdges[i] > 0, prefixEdges[best] > 0
		if ci != cb {
			return ci
		}
		if ci && prefixEdges[i] != prefixEdges[best] {
			return prefixEdges[i] > prefixEdges[best]
		}
		if len(base[i]) != len(base[best]) {
			return len(base[i]) < len(base[best])
		}
		return q.Degree(i) > q.Degree(best)
	}

	for len(order) < nq {
		best := graph.NodeID(-1)
		for i := graph.NodeID(0); int(i) < nq; i++ {
			if !picked[i] && better(i, best) {
				best = i
			}
		}
		picked[best] = true
		order = append(order, best)
		for _, a := range q.Arcs(best) {
			prefixEdges[a.To]++
		}
		if q.Directed() {
			for _, a := range q.InArcs(best) {
				prefixEdges[a.To]++
			}
		}
	}
	return order
}

// loopbackOK checks the edge constraint for a query edge whose endpoints
// are co-located on host r, binding the synthetic loopback attribute bag
// as the hosting edge.
func (s *consSearcher) loopbackOK(qe *graph.Edge, r graph.NodeID) bool {
	if s.p.EdgeConstraint == nil {
		return true
	}
	s.stats.ConstraintChk++
	b := expr.EdgeBinding{
		VEdge:   qe.Attrs,
		REdge:   s.copt.Loopback,
		VSource: s.p.Query.Node(qe.From).Attrs,
		VTarget: s.p.Query.Node(qe.To).Attrs,
		RSource: s.p.Host.Node(r).Attrs,
		RTarget: s.p.Host.Node(r).Attrs,
	}
	return s.p.EdgeConstraint.EvalEdge(&b)
}

// edgeToPlaced checks the query edge(s) between node (tentatively placed
// on r) and the earlier-placed neighbor nbr. Constraint bindings follow
// the stored edge's own From/To orientation, exactly like Verify.
func (s *consSearcher) edgeToPlaced(node, nbr, r graph.NodeID) bool {
	q := s.p.Query
	imageOf := func(n graph.NodeID) graph.NodeID {
		if n == node {
			return r
		}
		return s.assign[n]
	}
	checkEdge := func(eid graph.EdgeID) bool {
		qe := q.Edge(eid)
		rs, rt := imageOf(qe.From), imageOf(qe.To)
		if rs == rt {
			return s.loopbackOK(qe, rs)
		}
		s.stats.ConstraintChk++
		return s.p.EdgeFeasible(qe, rs, rt)
	}
	if eid, ok := q.EdgeBetween(node, nbr); ok && !checkEdge(eid) {
		return false
	}
	if q.Directed() {
		if eid, ok := q.EdgeBetween(nbr, node); ok && !checkEdge(eid) {
			return false
		}
	}
	return true
}

func (s *consSearcher) search(d int) {
	if s.timedOut || s.stopped {
		return
	}
	if d == len(s.order) {
		s.record()
		return
	}
	node := s.order[d]
	// Materialize this depth's candidates: the node's live domain (base
	// bitset under SearchChrono) minus saturated hosts, ascending — the
	// same order the base slice scan produced, with packed hosts pruned
	// word-wise up front.
	buf := s.scratch[d][:0]
	if s.fc {
		s.candBits.CopyFrom(&s.ds.dom[node])
	} else {
		s.candBits.CopyFrom(s.baseB[node])
	}
	if s.candBits.AndNotWith(s.saturated) {
		buf = s.candBits.AppendTo(buf)
	}
	s.scratch[d] = buf
	found := false
	for _, r := range buf {
		if s.checkDeadline() || s.stopped {
			return
		}
		if s.remaining[r] < s.demand[node] {
			continue
		}
		ok := true
		for _, nbr := range s.preNbrs[d] {
			if !s.edgeToPlaced(node, nbr, r) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		found = true
		s.stats.NodesVisited++
		var mark, amark int
		if s.fc {
			mark, amark = s.ds.mark()
			if !s.fcPrune(d, r) {
				// A later neighbor lost its last plausible host: reject
				// before descending.
				s.ds.undoTo(mark, amark)
				continue
			}
		}
		s.assign[node] = r
		s.remaining[r] -= s.demand[node]
		if s.remaining[r] < s.minDemand {
			s.saturated.Set(r)
		}
		s.search(d + 1)
		s.remaining[r] += s.demand[node]
		if s.remaining[r] >= s.minDemand {
			s.saturated.Clear(r)
		}
		s.assign[node] = -1
		if s.fc {
			s.ds.undoTo(mark, amark)
		}
	}
	if !found {
		s.stats.Backtracks++
	}
}

// fcPrune forward-checks placing the depth-d node on host r: every
// later-placed query neighbor must map into r's adjacency or co-locate
// on r itself. Reports false on wipeout; the caller undoes via its mark.
func (s *consSearcher) fcPrune(d int, r graph.NodeID) bool {
	if len(s.postNbrs[d]) == 0 {
		return true
	}
	row := s.adj.row(r)
	for _, nbr := range s.postNbrs[d] {
		s.stats.PruneOps++
		if s.ds.intersect(nbr, row) == 0 {
			s.stats.Wipeouts++
			s.stats.WipeoutDepthSum += int64(d)
			return false
		}
	}
	return true
}

func (s *consSearcher) record() {
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.opt.OnSolution != nil {
		if !s.opt.OnSolution(s.assign) {
			s.stopped = true
		}
	} else {
		s.solutions = append(s.solutions, s.assign.Clone())
	}
	if s.opt.MaxSolutions > 0 && s.nSol >= s.opt.MaxSolutions {
		s.stopped = true
	}
}

// VerifyConsolidated independently checks a many-to-one mapping: it must
// be complete, pack demands within every host's capacity, satisfy the
// node constraint pointwise, and satisfy the edge constraint on every
// query edge — against the real host edge when the endpoints are apart,
// against the synthetic loopback when they share a host.
func (p *Problem) VerifyConsolidated(m Mapping, copt ConsolidateOptions) error {
	copt = copt.withDefaults()
	nq := p.Query.NumNodes()
	if len(m) != nq {
		return fmt.Errorf("core: mapping has %d entries, query has %d nodes", len(m), nq)
	}
	load := make(map[graph.NodeID]float64)
	for q, r := range m {
		if r < 0 || int(r) >= p.Host.NumNodes() {
			return fmt.Errorf("core: query node %d mapped to invalid host node %d", q, r)
		}
		if !p.nodeOK(graph.NodeID(q), r) {
			return fmt.Errorf("core: node constraint rejects %d -> %d", q, r)
		}
		d, ok := p.Query.Node(graph.NodeID(q)).Attrs.Float(copt.DemandAttr)
		if !ok || d <= 0 {
			d = 1
		}
		load[r] += d
	}
	for r, used := range load {
		c, ok := p.Host.Node(r).Attrs.Float(copt.CapacityAttr)
		if !ok || c <= 0 {
			c = copt.DefaultCapacity
		}
		if used > c {
			return fmt.Errorf("core: host %d overloaded: %.3f demand on %.3f capacity", r, used, c)
		}
	}
	for i := 0; i < p.Query.NumEdges(); i++ {
		qe := p.Query.Edge(graph.EdgeID(i))
		rs, rt := m[qe.From], m[qe.To]
		if rs == rt {
			if p.EdgeConstraint == nil {
				continue
			}
			b := expr.EdgeBinding{
				VEdge:   qe.Attrs,
				REdge:   copt.Loopback,
				VSource: p.Query.Node(qe.From).Attrs,
				VTarget: p.Query.Node(qe.To).Attrs,
				RSource: p.Host.Node(rs).Attrs,
				RTarget: p.Host.Node(rt).Attrs,
			}
			if !p.EdgeConstraint.EvalEdge(&b) {
				return fmt.Errorf("core: loopback constraint rejects query edge %d on host %d", i, rs)
			}
			continue
		}
		reID, ok := p.Host.EdgeBetween(rs, rt)
		if !ok {
			return fmt.Errorf("core: query edge %d (%d-%d) has no host edge %d-%d", i, qe.From, qe.To, rs, rt)
		}
		if !p.edgeOK(qe, p.Host.Edge(reID), rs, rt) {
			return fmt.Errorf("core: edge constraint rejects query edge %d on host edge %d", i, reID)
		}
	}
	return nil
}
