package core

import (
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// This file is the seeded destroy/repair searcher behind the embedding
// lifecycle's migration-aware re-optimization: given an embedding that a
// model delta degraded, find a *minimal-migration* repair — a valid
// mapping that agrees with the old one on as many query nodes as
// possible — instead of re-embedding from scratch and moving everything.
//
// The search is LNS-shaped (destroy a neighborhood, repair it, grow the
// neighborhood on failure): the destroy set seeds with exactly the query
// nodes whose assignments the live snapshot invalidates (vanished or
// duplicated images, failed node constraints, violated incident edges),
// every node outside the set stays pinned to its old image, and the
// repair pass reassigns only the destroyed nodes — preferring each
// node's old image first, so a node destroyed because of a neighbor's
// violation gladly stays put. When no completion exists for the current
// destroy set, the set grows by its query-graph neighborhood and the
// search retries, which realizes the lifecycle objective (violations
// fixed minus nodes moved): the smallest migrations are proven
// impossible before a larger one is ever considered.

// RepairOptions tunes SeededRepair.
type RepairOptions struct {
	// Timeout bounds the whole destroy/repair loop (0 = unbounded).
	Timeout time.Duration
	// MaxMoved caps how many query nodes a repair plan may reassign
	// (0 = no cap beyond the query size). Neighborhood growth stops at
	// the cap: a repair needing more migrations than the budget allows
	// reports no mapping rather than exceeding it.
	MaxMoved int
	// Stop is the cooperative-cancellation hook, polled on the standard
	// deadline-check cadence (see Options.Stop).
	Stop func() bool
	// Objective, when enabled, breaks ties among repair plans: the repair
	// pass enumerates every completion of the minimal destroy set and
	// returns the one with the fewest migrations, then the lowest
	// objective cost (first found wins exact ties, deterministically).
	// Disabled, the first completion wins as before — no extra search.
	Objective Objective
}

// RepairResult reports one SeededRepair run.
type RepairResult struct {
	// Mapping is the repaired embedding, nil when none was found within
	// the budget/timeout. When the old mapping already verifies clean it
	// is returned unchanged with no Moved entries.
	Mapping Mapping
	// Moved lists the query nodes whose image changed, ascending.
	Moved []graph.NodeID
	// Destroyed is the size of the final destroy neighborhood (Moved can
	// be smaller: a destroyed node may win back its old image).
	Destroyed int
	// Infeasible is true when the failure is a proof: the destroy set
	// covered every query node and the full search space was exhausted,
	// so no embedding exists on this snapshot at all — the lifecycle
	// reports such embeddings Broken, not retry-forever.
	Infeasible bool
	// Exhausted is false when a timeout or Stop cut the run short; the
	// absence of a repair is then inconclusive.
	Exhausted bool
	// Stats carries the search effort counters.
	Stats Stats
}

// repairSearcher carries one destroy-set attempt's state.
type repairSearcher struct {
	p   *Problem
	nq  int
	nr  int
	old Mapping
	obj Objective // tie-break objective, ObjectiveNone = first completion wins

	stopClock
	stats *Stats
}

// SeededRepair computes a minimal-migration repair of old against p's
// (live) host. The old mapping may be arbitrarily stale: images out of
// range (vanished hosts re-resolve to -1), duplicated, or constraint-
// violating entries are what seed the destroy set. The query graph must
// be p.Query; len(old) must equal its node count.
func SeededRepair(p *Problem, old Mapping, opt RepairOptions) *RepairResult {
	start := time.Now()
	res := &RepairResult{Exhausted: true}
	s := &repairSearcher{
		p:     p,
		nq:    p.Query.NumNodes(),
		nr:    p.Host.NumNodes(),
		old:   old,
		obj:   opt.Objective,
		stats: &res.Stats,
	}
	s.arm(start, opt.Timeout, opt.Stop)
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	if len(old) != s.nq {
		// A mapping of the wrong shape cannot seed anything; treat every
		// node as destroyed and fall through to the growth loop's tail.
		old = make(Mapping, s.nq)
		for i := range old {
			old[i] = -1
		}
		s.old = old
	}

	maxMoved := opt.MaxMoved
	if maxMoved <= 0 || maxMoved > s.nq {
		maxMoved = s.nq
	}

	inSet := s.seedDestroySet()
	if len(inSet) == 0 {
		// Nothing violated: the old mapping is already healthy.
		res.Mapping = old.Clone()
		return res
	}

	for {
		size := len(inSet)
		if size > maxMoved {
			// The smallest conceivable repair already exceeds the
			// migration budget.
			res.Destroyed = size
			return res
		}
		m, ok := s.repairWith(inSet)
		if ok {
			if s.timedOut {
				// The repair is feasible but the tie-break enumeration was
				// cut short: the plan may not be the lowest-cost one.
				res.Exhausted = false
			}
			res.Mapping = m
			res.Destroyed = size
			for q := 0; q < s.nq; q++ {
				if m[q] != old[q] {
					res.Moved = append(res.Moved, graph.NodeID(q))
				}
			}
			return res
		}
		if s.timedOut {
			res.Exhausted = false
			res.Destroyed = size
			return res
		}
		if size == s.nq {
			// Full destroy set, exhausted search, no solution: a proof.
			res.Destroyed = size
			res.Infeasible = true
			return res
		}
		s.growDestroySet(inSet)
	}
}

// seedDestroySet computes the minimal violating neighborhood: query
// nodes whose images vanished, collide, or fail the node constraint,
// plus — for each violated query edge with neither endpoint already in
// the set — the endpoint incident to more violated edges (ties break to
// the lower node ID, deterministically).
func (s *repairSearcher) seedDestroySet() map[graph.NodeID]bool {
	inSet := make(map[graph.NodeID]bool)
	imageOf := make(map[graph.NodeID]graph.NodeID, s.nq)
	for q := 0; q < s.nq; q++ {
		qid := graph.NodeID(q)
		r := s.old[q]
		if r < 0 || int(r) >= s.nr {
			inSet[qid] = true
			continue
		}
		if _, dup := imageOf[r]; dup {
			// Injectivity broken (two names resolved to one survivor
			// after a delta): destroy the later claimant, keep the first.
			inSet[qid] = true
			continue
		}
		imageOf[r] = qid
		if !s.p.nodeOK(qid, r) {
			inSet[qid] = true
		}
	}
	// Count edge violations per still-pinned node, then pull one endpoint
	// of every violated pinned-pinned edge into the set.
	violations := make([]int, s.nq)
	violated := make([][2]graph.NodeID, 0)
	for i := 0; i < s.p.Query.NumEdges(); i++ {
		qe := s.p.Query.Edge(graph.EdgeID(i))
		if inSet[qe.From] || inSet[qe.To] {
			continue // already scheduled for reassignment
		}
		s.stats.ConstraintChk++
		if s.p.EdgeFeasible(qe, s.old[qe.From], s.old[qe.To]) {
			continue
		}
		violations[qe.From]++
		violations[qe.To]++
		violated = append(violated, [2]graph.NodeID{qe.From, qe.To})
	}
	for _, pair := range violated {
		u, v := pair[0], pair[1]
		if inSet[u] || inSet[v] {
			continue
		}
		pick := u
		if violations[v] > violations[u] || (violations[v] == violations[u] && v < u) {
			pick = v
		}
		inSet[pick] = true
	}
	return inSet
}

// growDestroySet expands the neighborhood by the query-graph neighbors
// of the current set; when that reaches a fixed point short of the whole
// query (a disconnected component), the lowest-ID survivor joins so the
// loop always makes progress toward the full re-embed.
func (s *repairSearcher) growDestroySet(inSet map[graph.NodeID]bool) {
	var frontier []graph.NodeID
	for q := range inSet {
		for _, a := range s.p.Query.Arcs(q) {
			if !inSet[a.To] {
				frontier = append(frontier, a.To)
			}
		}
		if s.p.Query.Directed() {
			for _, a := range s.p.Query.InArcs(q) {
				if !inSet[a.To] {
					frontier = append(frontier, a.To)
				}
			}
		}
	}
	if len(frontier) == 0 {
		for q := 0; q < s.nq; q++ {
			if !inSet[graph.NodeID(q)] {
				inSet[graph.NodeID(q)] = true
				return
			}
		}
		return
	}
	for _, q := range frontier {
		inSet[q] = true
	}
}

// repairWith attempts a completion that pins every node outside the
// destroy set to its old image and reassigns the destroyed ones. It
// reports ok=false when the (exhaustive, for this set) search finds no
// completion; the caller then grows the set. Candidate order prefers a
// destroyed node's old image so migrations happen only when forced.
func (s *repairSearcher) repairWith(inSet map[graph.NodeID]bool) (Mapping, bool) {
	// Pinned images occupy their hosts for the whole attempt.
	used := sets.NewBitset(s.nr)
	assign := make(Mapping, s.nq)
	for q := 0; q < s.nq; q++ {
		qid := graph.NodeID(q)
		if inSet[qid] {
			assign[q] = -1
			continue
		}
		assign[q] = s.old[q]
		used.Set(s.old[q])
	}

	// Per-destroyed-node candidate domains: node-admissible, unused by a
	// pin, and consistent with every edge into the pinned region. Edges
	// between two destroyed nodes are checked during the DFS.
	destroyed := make([]graph.NodeID, 0, len(inSet))
	for q := range inSet {
		destroyed = append(destroyed, q)
	}
	sortNodeIDs(destroyed)

	cands := make(map[graph.NodeID][]graph.NodeID, len(destroyed))
	for _, q := range destroyed {
		var list []graph.NodeID
		// Old image first: zero-migration reassignments win ties.
		if r := s.old[q]; r >= 0 && int(r) < s.nr {
			if s.candidateOK(q, r, assign, used) {
				list = append(list, r)
			}
		}
		for r := graph.NodeID(0); int(r) < s.nr; r++ {
			if s.checkDeadline() {
				return nil, false
			}
			if r == s.old[q] {
				continue
			}
			if s.candidateOK(q, r, assign, used) {
				list = append(list, r)
			}
		}
		if len(list) == 0 {
			s.stats.Wipeouts++
			s.stats.WipeoutDepthSum += int64(s.nq - len(destroyed))
			return nil, false
		}
		cands[q] = list
	}

	// Most-constrained first: fewest candidates, ties to lower ID.
	order := append([]graph.NodeID(nil), destroyed...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if len(cands[a]) < len(cands[b]) || (len(cands[a]) == len(cands[b]) && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}

	// Objective tie-break (RepairOptions.Objective): rather than stopping
	// at the first completion, enumerate every completion of this destroy
	// set and keep the (fewest-migrations, lowest-cost) one — the destroy
	// set is already minimal, so the enumeration ranges only over the
	// plans the migration-minimality proof admits.
	var (
		bestAssign Mapping
		bestMoved  int
		bestCost   float64
		haveBest   bool
	)
	movedOf := func() int {
		n := 0
		for _, q := range destroyed {
			if assign[q] != s.old[q] {
				n++
			}
		}
		return n
	}

	var rec func(d int) bool
	rec = func(d int) bool {
		if s.checkDeadline() {
			return false
		}
		if d == len(order) {
			if !s.obj.Enabled() {
				return true
			}
			moved, cost := movedOf(), s.obj.Cost(s.p.Host, assign)
			if !haveBest || moved < bestMoved || (moved == bestMoved && cost < bestCost) {
				bestAssign = append(bestAssign[:0], assign...)
				bestMoved, bestCost, haveBest = moved, cost, true
			}
			return false // keep enumerating completions
		}
		q := order[d]
		found := false
		for _, r := range cands[q] {
			if used.Has(r) {
				continue
			}
			s.stats.NodesVisited++
			if !s.edgesToAssignedOK(q, r, assign) {
				continue
			}
			assign[q] = r
			used.Set(r)
			if rec(d + 1) {
				return true
			}
			used.Clear(r)
			assign[q] = -1
			found = true
			if s.timedOut {
				return false
			}
		}
		if !found {
			s.stats.Backtracks++
		}
		return false
	}
	if rec(0) {
		return assign.Clone(), true
	}
	if haveBest {
		// Even when the deadline fired mid-enumeration: bestAssign is a
		// verified feasible repair, and the objective is only a best-effort
		// tie-break — without one the first completion would already have
		// been returned, so a timeout must not turn success into failure.
		return bestAssign, true
	}
	return nil, false
}

// candidateOK filters one (destroyed node, host) pairing against the
// pinned region: node constraint, injectivity with pins, and every query
// edge from q into a pinned neighbor (host edge exists, right
// orientation, edge constraint holds).
func (s *repairSearcher) candidateOK(q, r graph.NodeID, assign Mapping, used *sets.Bitset) bool {
	if used.Has(r) || !s.p.nodeOK(q, r) {
		return false
	}
	return s.edgesOK(q, r, assign, true)
}

// edgesToAssignedOK checks q→r against everything currently assigned —
// pins and earlier destroyed nodes alike.
func (s *repairSearcher) edgesToAssignedOK(q, r graph.NodeID, assign Mapping) bool {
	return s.edgesOK(q, r, assign, false)
}

// edgesOK verifies every query edge between q (placed at r) and an
// assigned neighbor. pinnedOnly restricts the sweep to edges whose other
// endpoint lies outside the destroy set (the candidate pre-filter);
// otherwise every assigned neighbor counts (the DFS consistency check).
func (s *repairSearcher) edgesOK(q, r graph.NodeID, assign Mapping, pinnedOnly bool) bool {
	check := func(a graph.Arc, qIsFrom bool) bool {
		other := a.To
		if assign[other] < 0 {
			return true
		}
		if pinnedOnly && s.old[other] != assign[other] {
			// Skip destroyed-but-assigned neighbors in pre-filter mode;
			// with assign fresh from the pin pass this branch is moot, but
			// keeps the helper honest if reused mid-search.
			return true
		}
		qe := s.p.Query.Edge(a.Edge)
		rs, rt := r, assign[other]
		if !qIsFrom {
			rs, rt = assign[other], r
		}
		s.stats.ConstraintChk++
		return s.p.EdgeFeasible(qe, rs, rt)
	}
	for _, a := range s.p.Query.Arcs(q) {
		if !check(a, s.p.Query.Edge(a.Edge).From == q) {
			return false
		}
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			if !check(a, false) {
				return false
			}
		}
	}
	return true
}

// sortNodeIDs sorts ascending in place (insertion sort; destroy sets are
// small by design).
func sortNodeIDs(s []graph.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FindWitness searches the host for one witness path for query edge qe
// between the mapped endpoints rs→rt under the options' composed-metric
// windows, honoring MaxHops, the timeout and the Stop hook. It is the
// re-routing primitive of the embedding lifecycle: a path-mode embedding
// whose witness a delta broke can often be healed by a fresh witness
// with zero node migrations. The returned path's Cost is the first
// metric's composed value, matching PathEmbed's convention.
func FindWitness(host *graph.Graph, qe *graph.Edge, rs, rt graph.NodeID, opt PathOptions) (graph.Path, bool) {
	opt.applyDefaults()
	var clk stopClock
	clk.arm(time.Now(), opt.Timeout, opt.Stop)
	var found graph.Path
	ok := false
	host.PathsWithinStop(rs, rt, opt.MaxHops, clk.checkDeadline, func(path graph.Path) bool {
		if !pathMetricsOK(host, qe, path.Edges, opt.Metrics) {
			return true
		}
		path.Cost, _ = opt.Metrics[0].composeAlong(host, path.Edges)
		found, ok = path, true
		return false
	})
	return found, ok
}
