package core

import (
	"math/rand"
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// DynamicECF is ECF with dynamic variable ordering: instead of fixing the
// node order up front (Lemma 1), every level re-selects the unplaced
// query node with the fewest current candidates — the classic
// most-constrained-variable rule from constraint programming, evaluated
// against the live filter rows. It explores the provably smallest
// permutation tree at the cost of recomputing candidate sets for all open
// nodes at each level; the ablation bench quantifies the trade against
// static ordering.
//
// Completeness and correctness are inherited from the same filter
// machinery as ECF: candidate sets are exact for edges into placed
// neighbors, and node admissibility is folded into the filters.
func DynamicECF(p *Problem, opt Options) *Result {
	start := time.Now()
	f := BuildFilters(p, &opt)
	optimize := opt.Optimize && opt.Objective.Enabled()
	if optimize {
		opt.MaxSolutions = 0 // optimality needs the exhausted tree
		opt.OnSolution = nil
	}
	if opt.Engine != SearchChrono {
		// FC engine in dynamic mode: the live domain counts make the MRV
		// pick an O(nq) read instead of a full re-intersection per open
		// node, and backjumping prunes on top.
		var rng *rand.Rand
		if opt.Seed != 0 {
			rng = rand.New(rand.NewSource(opt.Seed))
		}
		s := newFCSearcher(p, f, opt, rng, start, true)
		s.run()
		res := s.result()
		s.release()
		f.release()
		return res
	}
	s := &dynSearcher{
		p:       p,
		f:       f,
		opt:     opt,
		nq:      p.Query.NumNodes(),
		assign:  make(Mapping, p.Query.NumNodes()),
		used:    sets.NewBitset(p.Host.NumNodes()),
		started: start,
		stats:   f.Stats(),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	if f.Dense() {
		s.bufBits = sets.NewBitset(p.Host.NumNodes())
	}
	s.arm(start, opt.Timeout, opt.Stop)
	if opt.Seed != 0 {
		s.rng = rand.New(rand.NewSource(opt.Seed))
	}
	s.search(0)
	exhausted := !s.timedOut && !s.stopped
	res := &Result{
		Solutions: s.solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, s.nSol),
		Stats:     s.stats,
	}
	if optimize {
		reduceToArgmin(p.Host, opt.Objective, res)
	}
	res.Stats.Elapsed = time.Since(start)
	f.release()
	return res
}

type dynSearcher struct {
	p   *Problem
	f   *Filters
	opt Options
	rng *rand.Rand

	nq     int
	assign Mapping
	used   *sets.Bitset

	bufA, bufB sets.Set
	rows       []sets.Set
	rowsB      []*sets.Bitset
	bufBits    *sets.Bitset // dense-mode intersection accumulator

	stopClock
	stopped bool

	started   time.Time
	solutions []Mapping
	nSol      int
	stats     Stats
}

// candidatesFor computes the current candidate set of an unplaced node:
// the intersection of filter rows from placed neighbors (or the base set
// when none), minus used hosts. The result aliases s.bufA. It operates on
// whichever representation the filters carry.
func (s *dynSearcher) candidatesFor(q graph.NodeID) sets.Set {
	if s.f.Dense() {
		return s.candidatesForDense(q)
	}
	s.rows = s.rows[:0]
	collect := func(nbr graph.NodeID) bool {
		if s.assign[nbr] < 0 {
			return true
		}
		for _, t := range s.f.arcTables[arcKey(nbr, q)] {
			row := s.f.tables[t][s.assign[nbr]]
			if len(row) == 0 {
				return false
			}
			s.rows = append(s.rows, row)
		}
		return true
	}
	for _, a := range s.p.Query.Arcs(q) {
		if !collect(a.To) {
			return s.bufA[:0]
		}
	}
	if s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			if !collect(a.To) {
				return s.bufA[:0]
			}
		}
	}
	var cur sets.Set
	if len(s.rows) == 0 {
		cur = s.f.base[q]
	} else {
		cur = s.rows[0]
		a, b := s.bufB, s.bufA
		for i := 1; i < len(s.rows) && len(cur) > 0; i++ {
			a = sets.IntersectInto(a[:0], cur, s.rows[i])
			cur = a
			a, b = b, a
		}
		s.bufB, s.bufA = a, b
	}
	out := s.bufA[:0]
	for _, r := range cur {
		if !s.used.Has(r) {
			out = append(out, r)
		}
	}
	s.bufA = out
	return out
}

// candidatesForDense is candidatesFor on bitset rows: a nil row from a
// placed neighbor is empty (dead end), otherwise the rows AND together in
// the accumulator and the used marks subtract word-wise.
func (s *dynSearcher) candidatesForDense(q graph.NodeID) sets.Set {
	s.rowsB = s.rowsB[:0]
	dead := false
	collect := func(nbr graph.NodeID) bool {
		if s.assign[nbr] < 0 {
			return true
		}
		for _, t := range s.f.arcTables[arcKey(nbr, q)] {
			row := s.f.tablesB[t][s.assign[nbr]]
			if row == nil {
				return false
			}
			s.rowsB = append(s.rowsB, row)
		}
		return true
	}
	for _, a := range s.p.Query.Arcs(q) {
		if !collect(a.To) {
			dead = true
			break
		}
	}
	if !dead && s.p.Query.Directed() {
		for _, a := range s.p.Query.InArcs(q) {
			if !collect(a.To) {
				dead = true
				break
			}
		}
	}
	if dead {
		s.bufA = s.bufA[:0]
		return s.bufA
	}
	bb := s.bufBits
	nonempty := true
	if len(s.rowsB) == 0 {
		bb.CopyFrom(s.f.baseB[q])
	} else {
		bb.CopyFrom(s.rowsB[0])
		for _, row := range s.rowsB[1:] {
			if nonempty = bb.IntersectWith(row); !nonempty {
				break
			}
		}
	}
	out := s.bufA[:0]
	if nonempty && bb.AndNotWith(s.used) {
		out = bb.AppendTo(out)
	}
	s.bufA = out
	return out
}

// pickVariable returns the unplaced node with the fewest candidates and a
// copy of that candidate set (most-constrained-variable).
func (s *dynSearcher) pickVariable() (graph.NodeID, []int32) {
	best := graph.NodeID(-1)
	var bestCands []int32
	for q := graph.NodeID(0); int(q) < s.nq; q++ {
		if s.assign[q] >= 0 {
			continue
		}
		cands := s.candidatesFor(q)
		if best < 0 || len(cands) < len(bestCands) {
			best = q
			bestCands = append(bestCands[:0], cands...)
			if len(bestCands) == 0 {
				break // cannot do better than a dead end
			}
		}
	}
	return best, bestCands
}

func (s *dynSearcher) search(depth int) {
	if s.timedOut || s.stopped {
		return
	}
	if depth == s.nq {
		s.record()
		return
	}
	q, cands := s.pickVariable()
	if len(cands) == 0 {
		s.stats.Backtracks++
		return
	}
	if s.rng != nil {
		s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	for _, r := range cands {
		if s.checkDeadline() || s.stopped {
			return
		}
		s.stats.NodesVisited++
		s.assign[q] = r
		s.used.Set(r)
		s.search(depth + 1)
		s.used.Clear(r)
		s.assign[q] = -1
	}
}

func (s *dynSearcher) record() {
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.opt.OnSolution != nil {
		if !s.opt.OnSolution(s.assign) {
			s.stopped = true
		}
	} else {
		s.solutions = append(s.solutions, s.assign.Clone())
	}
	if s.opt.MaxSolutions > 0 && s.nSol >= s.opt.MaxSolutions {
		s.stopped = true
	}
}
