package core

import (
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

// delayHost stamps every edge of g with the standard 10..20 delay range
// accepted by delayWindow against a 5..25 query window.
func delayHost(g *graph.Graph) *graph.Graph {
	for i := 0; i < g.NumEdges(); i++ {
		g.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.
			SetNum("minDelay", 10).SetNum("maxDelay", 20)
	}
	return g
}

// breakHostEdge pushes the host edge between u and v outside every
// 5..25 query window, simulating a delta that degraded the link.
func breakHostEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID) {
	t.Helper()
	id, ok := g.EdgeBetween(u, v)
	if !ok {
		t.Fatalf("no host edge %d-%d to break", u, v)
	}
	g.Edge(id).Attrs = graph.Attrs{}.SetNum("minDelay", 100).SetNum("maxDelay", 200)
}

func lineOnCliqueProblem(t *testing.T, nHost int) *Problem {
	t.Helper()
	host := delayHost(topo.Clique(nHost))
	query := topo.Line(3)
	topo.SetDelayWindow(query, 5, 25)
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSeededRepairHealthyNoop(t *testing.T) {
	p := lineOnCliqueProblem(t, 5)
	old := Mapping{0, 1, 2}
	res := SeededRepair(p, old, RepairOptions{})
	if res.Mapping == nil || len(res.Moved) != 0 || res.Destroyed != 0 {
		t.Fatalf("healthy mapping was disturbed: %+v", res)
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("returned mapping invalid: %v", err)
	}
	old[0] = 4 // the result must be a copy, not an alias
	if res.Mapping[0] != 0 {
		t.Fatal("result aliases the input mapping")
	}
}

func TestSeededRepairSingleMove(t *testing.T) {
	p := lineOnCliqueProblem(t, 5)
	breakHostEdge(t, p.Host, 1, 2)
	old := Mapping{0, 1, 2}
	res := SeededRepair(p, old, RepairOptions{})
	if res.Mapping == nil {
		t.Fatal("no repair found")
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	// On a clique with one broken edge, moving a single endpoint off the
	// broken link suffices; a minimal-migration repair must find it.
	if len(res.Moved) != 1 {
		t.Fatalf("moved %v, want exactly one node", res.Moved)
	}
	if !res.Exhausted || res.Infeasible {
		t.Fatalf("bad flags: %+v", res)
	}
	kept := 0
	for q := range old {
		if res.Mapping[q] == old[q] {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("kept %d assignments, want 2 (mapping %v)", kept, res.Mapping)
	}
}

func TestSeededRepairVanishedHost(t *testing.T) {
	p := lineOnCliqueProblem(t, 5)
	// A structural delta removed the host; the lifecycle re-resolves the
	// name to -1.
	old := Mapping{0, -1, 2}
	res := SeededRepair(p, old, RepairOptions{})
	if res.Mapping == nil {
		t.Fatal("no repair found")
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if len(res.Moved) != 1 || res.Moved[0] != 1 {
		t.Fatalf("moved %v, want just the vanished node", res.Moved)
	}
	if res.Mapping[0] != 0 || res.Mapping[2] != 2 {
		t.Fatalf("surviving pins disturbed: %v", res.Mapping)
	}
}

func TestSeededRepairDuplicateImages(t *testing.T) {
	p := lineOnCliqueProblem(t, 5)
	// Two query nodes re-resolved to the same survivor after a delta
	// merged their hosts' names; injectivity must be restored.
	old := Mapping{0, 1, 1}
	res := SeededRepair(p, old, RepairOptions{})
	if res.Mapping == nil {
		t.Fatal("no repair found")
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if len(res.Moved) != 1 || res.Moved[0] != 2 {
		t.Fatalf("moved %v, want just the later duplicate claimant", res.Moved)
	}
}

// TestSeededRepairGrowsNeighborhood pins the LNS growth loop: on a ring
// the single-endpoint destroy set is provably unrepairable, so the set
// must expand until a two-node migration succeeds — and nodes destroyed
// but re-placed at their old image must not count as moved.
func TestSeededRepairGrowsNeighborhood(t *testing.T) {
	host := delayHost(topo.Ring(8))
	query := topo.Line(3)
	topo.SetDelayWindow(query, 5, 25)
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	breakHostEdge(t, host, 1, 2)
	old := Mapping{0, 1, 2}
	res := SeededRepair(p, old, RepairOptions{})
	if res.Mapping == nil {
		t.Fatal("no repair found")
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if len(res.Moved) != 2 {
		t.Fatalf("moved %v, want two nodes (one ring flank must relocate)", res.Moved)
	}
	if res.Destroyed <= len(res.Moved)-1 {
		t.Fatalf("destroyed %d with %d moved: growth never happened", res.Destroyed, len(res.Moved))
	}
}

func TestSeededRepairRespectsMoveBudget(t *testing.T) {
	host := delayHost(topo.Ring(8))
	query := topo.Line(3)
	topo.SetDelayWindow(query, 5, 25)
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	breakHostEdge(t, host, 1, 2)
	res := SeededRepair(p, Mapping{0, 1, 2}, RepairOptions{MaxMoved: 1})
	if res.Mapping != nil {
		t.Fatalf("repair %v returned under a 1-move budget that needs 2", res.Mapping)
	}
	if res.Infeasible {
		t.Fatal("budget exhaustion misreported as infeasibility proof")
	}
	if !res.Exhausted {
		t.Fatal("budgeted run misreported as timed out")
	}
}

func TestSeededRepairInfeasibleIsAProof(t *testing.T) {
	host := delayHost(topo.Line(3))
	query := topo.Line(3)
	// No host edge can satisfy an impossible window: every destroy set up
	// to the full query must fail, and that is a Broken proof.
	topo.SetDelayWindow(query, 1, 2)
	p, err := NewProblem(query, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SeededRepair(p, Mapping{0, 1, 2}, RepairOptions{})
	if res.Mapping != nil {
		t.Fatalf("repair found for infeasible instance: %v", res.Mapping)
	}
	if !res.Infeasible || !res.Exhausted {
		t.Fatalf("want Infeasible+Exhausted, got %+v", res)
	}
	if res.Destroyed != 3 {
		t.Fatalf("proof must cover the full query, destroyed %d", res.Destroyed)
	}
}

func TestSeededRepairStopHook(t *testing.T) {
	p := lineOnCliqueProblem(t, 64)
	breakHostEdge(t, p.Host, 1, 2)
	res := SeededRepair(p, Mapping{0, 1, 2}, RepairOptions{Stop: func() bool { return true }})
	if res.Mapping != nil && res.Exhausted {
		// A pre-cancelled run may still succeed before the first poll on
		// tiny instances; what it must never do is claim exhaustion after
		// being cut short.
		if err := p.Verify(res.Mapping); err != nil {
			t.Fatalf("repair invalid: %v", err)
		}
	}
	if res.Mapping == nil && res.Infeasible {
		t.Fatal("cancelled run claimed an infeasibility proof")
	}
}

// TestSeededRepairCrossCheck corrupts known-good embeddings on random
// instances and checks every repair the searcher returns is valid, agrees
// with the seed outside Moved, and never misses a trivially-available fix.
func TestSeededRepairCrossCheck(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := smallProblem(t, seed)
		all := naiveEmbeddings(p)
		if len(all) == 0 {
			continue
		}
		old := all[0].Clone()
		old[0] = -1 // vanish one image; the original is still available
		res := SeededRepair(p, old, RepairOptions{Timeout: 5 * time.Second})
		if res.Mapping == nil {
			t.Fatalf("seed %d: no repair though restoring the original works (%+v)", seed, res)
		}
		if err := p.Verify(res.Mapping); err != nil {
			t.Fatalf("seed %d: repair invalid: %v", seed, err)
		}
		moved := map[graph.NodeID]bool{}
		for _, q := range res.Moved {
			moved[q] = true
		}
		for q := range old {
			qid := graph.NodeID(q)
			if !moved[qid] && res.Mapping[q] != old[q] {
				t.Fatalf("seed %d: node %d silently moved %d→%d", seed, q, old[q], res.Mapping[q])
			}
			if moved[qid] && res.Mapping[q] == old[q] {
				t.Fatalf("seed %d: node %d reported moved but kept its image", seed, q)
			}
		}
	}
}

func TestFindWitness(t *testing.T) {
	host := topo.Line(4)
	for i := 0; i < host.NumEdges(); i++ {
		host.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.SetNum("avgDelay", 10)
	}
	query := topo.Line(2)
	qe := query.Edge(0)
	qe.Attrs = graph.Attrs{}.SetNum("minDelay", 5).SetNum("maxDelay", 35)

	path, ok := FindWitness(host, qe, 0, 3, PathOptions{MaxHops: 3})
	if !ok {
		t.Fatal("no witness on a feasible line")
	}
	if len(path.Edges) != 3 || path.Cost != 30 {
		t.Fatalf("witness %v cost %v, want the 3-hop line at composed delay 30", path.Edges, path.Cost)
	}

	// Hop bound below the only route: no witness.
	if _, ok := FindWitness(host, qe, 0, 3, PathOptions{MaxHops: 2}); ok {
		t.Fatal("witness found past the hop bound")
	}

	// Window excludes the composed delay: no witness.
	qe.Attrs = graph.Attrs{}.SetNum("minDelay", 5).SetNum("maxDelay", 25)
	if _, ok := FindWitness(host, qe, 0, 3, PathOptions{MaxHops: 3}); ok {
		t.Fatal("witness found outside the delay window")
	}
}

// priceHosts stamps per-host "price" attributes in node-ID order.
func priceHosts(g *graph.Graph, prices ...float64) {
	for i, v := range prices {
		g.Node(graph.NodeID(i)).Attrs = g.Node(graph.NodeID(i)).Attrs.SetNum("price", v)
	}
}

// TestSeededRepairObjectiveTieBreak pins the objective-aware tie-break:
// among the equal-migration repairs of the minimal destroy set, the one
// with the lowest objective cost must win.
func TestSeededRepairObjectiveTieBreak(t *testing.T) {
	p := lineOnCliqueProblem(t, 6)
	// Hosts 3, 4, 5 are the candidate refuges for the single endpoint the
	// broken 1-2 link forces off; host 4 is the cheapest.
	priceHosts(p.Host, 5, 5, 5, 9, 2, 7)
	breakHostEdge(t, p.Host, 1, 2)
	old := Mapping{0, 1, 2}
	obj := Objective{Kind: ObjectiveAttrCost, Attr: "price"}

	res := SeededRepair(p, old, RepairOptions{Objective: obj})
	if res.Mapping == nil {
		t.Fatalf("no repair found: %+v", res)
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if len(res.Moved) != 1 {
		t.Fatalf("moved %v, want exactly one node", res.Moved)
	}
	// Whichever endpoint moved, it must have landed on the cheap host:
	// total price 5 (kept root) + 5 (kept endpoint) + 2 (host 4) = 12.
	if c := obj.Cost(p.Host, res.Mapping); c != 12 {
		t.Fatalf("repair cost %v (mapping %v), want the cheapest plan at 12", c, res.Mapping)
	}
}

// TestSeededRepairObjectiveMovedStillPrimary pins the lexicographic
// order: migration count dominates cost. A two-move plan onto bargain
// hosts must lose to the one-move plan even when it is far cheaper.
func TestSeededRepairObjectiveMovedStillPrimary(t *testing.T) {
	p := lineOnCliqueProblem(t, 6)
	// The old endpoints sit on expensive hosts; the refuges are cheap, so
	// evacuating both endpoints would cost 1+1+1=3 versus the one-move
	// plan's 1+100+1=102. Migration count must still win.
	priceHosts(p.Host, 1, 100, 100, 1, 1, 1)
	breakHostEdge(t, p.Host, 1, 2)
	old := Mapping{0, 1, 2}
	obj := Objective{Kind: ObjectiveAttrCost, Attr: "price"}

	res := SeededRepair(p, old, RepairOptions{Objective: obj})
	if res.Mapping == nil {
		t.Fatalf("no repair found: %+v", res)
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if len(res.Moved) != 1 {
		t.Fatalf("moved %v — a cheaper two-move plan must not beat fewer migrations", res.Moved)
	}
	if c := obj.Cost(p.Host, res.Mapping); c != 102 {
		t.Fatalf("repair cost %v (mapping %v), want 102", c, res.Mapping)
	}
}

// TestSeededRepairObjectiveCutoffKeepsRepair pins that cancellation
// mid-tie-break cannot turn success into failure: once the enumeration
// has verified any feasible repair, a deadline/Stop cut returns that
// repair (Exhausted=false) instead of nil — without an objective the
// first completion would have been returned immediately, so wiring a
// repair objective must never lose a repair to the clock.
func TestSeededRepairObjectiveCutoffKeepsRepair(t *testing.T) {
	// One destroyed query node with 200 feasible hosts. The stop hook
	// returns true from the first poll, but the cancellation cadence
	// (stopClock: every 256 checkDeadline calls) means the first poll
	// lands mid-enumeration: 200 calls building the candidate list, then
	// one per completion — dozens of feasible plans are recorded before
	// the cut fires.
	host := graph.NewUndirected()
	for i := 0; i < 200; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("price", float64(200-i)))
	}
	query := graph.NewUndirected()
	query.AddNode("", nil)
	p, err := NewProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SeededRepair(p, Mapping{-1}, RepairOptions{
		Objective: Objective{Kind: ObjectiveAttrCost, Attr: "price"},
		Stop:      func() bool { return true },
	})
	if res.Mapping == nil {
		t.Fatalf("cut-off tie-break dropped an already-found feasible repair: %+v", res)
	}
	if err := p.Verify(res.Mapping); err != nil {
		t.Fatalf("returned repair invalid: %v", err)
	}
	if res.Exhausted {
		t.Fatal("cut-short tie-break claimed exhaustion")
	}
	if len(res.Moved) != 1 || res.Moved[0] != 0 {
		t.Fatalf("moved %v, want exactly the destroyed node", res.Moved)
	}
}

// TestSeededRepairObjectiveDisabledUnchanged pins that the zero-value
// objective keeps the historic behavior byte-for-byte: first completion
// wins, no extra enumeration.
func TestSeededRepairObjectiveDisabledUnchanged(t *testing.T) {
	mk := func() (*Problem, Mapping) {
		p := lineOnCliqueProblem(t, 6)
		priceHosts(p.Host, 5, 5, 5, 9, 2, 7)
		breakHostEdge(t, p.Host, 1, 2)
		return p, Mapping{0, 1, 2}
	}
	p1, old1 := mk()
	plain := SeededRepair(p1, old1, RepairOptions{})
	p2, old2 := mk()
	zero := SeededRepair(p2, old2, RepairOptions{Objective: Objective{}})
	if plain.Mapping == nil || zero.Mapping == nil {
		t.Fatal("no repair found")
	}
	if mappingKey(plain.Mapping) != mappingKey(zero.Mapping) {
		t.Fatalf("zero objective changed the answer: %v vs %v", plain.Mapping, zero.Mapping)
	}
	if plain.Stats.NodesVisited != zero.Stats.NodesVisited {
		t.Fatalf("zero objective changed the search effort: %d vs %d nodes",
			plain.Stats.NodesVisited, zero.Stats.NodesVisited)
	}
}
