package core

import (
	"testing"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

// metricHost builds a line 0-1-2-3: each hop 10ms delay, bandwidths
// 100/50/100 Mbit, availability 0.99 per hop.
func metricHost() *graph.Graph {
	h := topo.Line(4)
	bw := []float64{100, 50, 100}
	for i := 0; i < h.NumEdges(); i++ {
		h.Edge(graph.EdgeID(i)).Attrs = graph.Attrs{}.
			SetNum("avgDelay", 10).
			SetNum("bandwidth", bw[i]).
			SetNum("availability", 0.99)
	}
	return h
}

func TestComposeRules(t *testing.T) {
	h := metricHost()
	edges := []graph.EdgeID{0, 1, 2}

	if v, ok := (MetricSpec{Attr: "avgDelay", Rule: Additive}).composeAlong(h, edges); !ok || v != 30 {
		t.Errorf("additive = %v,%v want 30", v, ok)
	}
	if v, ok := (MetricSpec{Attr: "bandwidth", Rule: Bottleneck}).composeAlong(h, edges); !ok || v != 50 {
		t.Errorf("bottleneck = %v,%v want 50", v, ok)
	}
	spec := MetricSpec{Attr: "availability", Rule: Multiplicative}
	if v, ok := spec.composeAlong(h, edges); !ok || v < 0.9702 || v > 0.9703 {
		t.Errorf("multiplicative = %v,%v want ≈0.9703", v, ok)
	}
	// Empty path: neutral elements.
	if v, _ := (MetricSpec{Rule: Additive}).composeAlong(h, nil); v != 0 {
		t.Errorf("empty additive = %v", v)
	}
	if v, _ := (MetricSpec{Rule: Multiplicative}).composeAlong(h, nil); v != 1 {
		t.Errorf("empty multiplicative = %v", v)
	}
}

func TestComposeMissingAttr(t *testing.T) {
	h := metricHost()
	h.Edge(1).Attrs = graph.Attrs{}.SetNum("avgDelay", 10) // no bandwidth
	edges := []graph.EdgeID{0, 1, 2}

	strict := MetricSpec{Attr: "bandwidth", Rule: Bottleneck, MissingFails: true}
	if _, ok := strict.composeAlong(h, edges); ok {
		t.Error("MissingFails did not reject")
	}
	lenient := MetricSpec{Attr: "bandwidth", Rule: Bottleneck, MissingEdge: 25}
	if v, ok := lenient.composeAlong(h, edges); !ok || v != 25 {
		t.Errorf("lenient bottleneck = %v,%v want 25", v, ok)
	}
}

func TestWithinWindow(t *testing.T) {
	qe := &graph.Edge{Attrs: graph.Attrs{}.SetNum("minBw", 40).SetNum("maxDelay", 35)}
	bwSpec := MetricSpec{LoAttr: "minBw"}
	if !bwSpec.withinWindow(qe, 50) {
		t.Error("50 >= 40 rejected")
	}
	if bwSpec.withinWindow(qe, 30) {
		t.Error("30 < 40 accepted")
	}
	dSpec := MetricSpec{HiAttr: "maxDelay"}
	if !dSpec.withinWindow(qe, 30) {
		t.Error("30 <= 35 rejected")
	}
	if dSpec.withinWindow(qe, 40) {
		t.Error("40 > 35 accepted")
	}
	// Absent window attributes are unbounded.
	open := MetricSpec{LoAttr: "noSuch", HiAttr: ""}
	if !open.withinWindow(qe, 1e12) {
		t.Error("unbounded window rejected")
	}
}

func TestComposeString(t *testing.T) {
	if Additive.String() != "additive" || Bottleneck.String() != "bottleneck" ||
		Multiplicative.String() != "multiplicative" {
		t.Error("compose names wrong")
	}
	if Compose(7).String() != "Compose(7)" {
		t.Error("unknown compose name wrong")
	}
}

func TestPathEmbedMultiMetric(t *testing.T) {
	host := metricHost()
	// One logical link: needs 20-40ms accumulated delay AND >= 60 Mbit
	// bottleneck bandwidth. The 3-hop path 0..3 has delay 30 ✓ but
	// bandwidth 50 ✗; the 2-hop path 0..2 has delay 20 ✓ and bandwidth
	// min(100,50) = 50 ✗; only... no path satisfies both.
	q := topo.Line(2)
	q.Edge(0).Attrs = graph.Attrs{}.
		SetNum("minDelay", 20).SetNum("maxDelay", 40).
		SetNum("minBw", 60)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{
		DefaultDelaySpec("avgDelay", "minDelay", "maxDelay"),
		{Attr: "bandwidth", Rule: Bottleneck, LoAttr: "minBw", MissingFails: true},
	}
	res := PathEmbed(p, PathOptions{MaxHops: 3, Metrics: specs})
	if len(res.Solutions) != 0 {
		t.Fatalf("bandwidth bottleneck should kill every window-satisfying path, got %d", len(res.Solutions))
	}

	// Relax bandwidth to 40: the 2-hop paths through edge pairs with
	// min bandwidth 50 now qualify.
	q.Edge(0).Attrs.SetNum("minBw", 40)
	res = PathEmbed(p, PathOptions{MaxHops: 3, Metrics: specs})
	if len(res.Solutions) == 0 {
		t.Fatal("relaxed bandwidth found nothing")
	}
	for _, sol := range res.Solutions {
		if err := VerifyPathSolution(p, PathOptions{MaxHops: 3, Metrics: specs}, sol); err != nil {
			t.Errorf("multi-metric witness invalid: %v", err)
		}
		// Independently recheck both composed metrics.
		for eid, path := range sol.Paths {
			qe := p.Query.Edge(eid)
			if !pathMetricsOK(host, qe, path.Edges, specs) {
				t.Errorf("witness fails metric recheck: %v", path)
			}
		}
	}
}

func TestPathEmbedAvailabilityMetric(t *testing.T) {
	host := metricHost()
	q := topo.Line(2)
	// Require end-to-end availability >= 0.985: single hops (0.99)
	// qualify, 2-hop paths (0.9801) do not.
	q.Edge(0).Attrs = graph.Attrs{}.SetNum("minAvail", 0.985)
	p, err := NewProblem(q, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{{
		Attr: "availability", Rule: Multiplicative,
		LoAttr: "minAvail", MissingFails: true,
	}}
	res := PathEmbed(p, PathOptions{MaxHops: 2, Metrics: specs})
	if len(res.Solutions) == 0 {
		t.Fatal("availability embedding found nothing")
	}
	for _, sol := range res.Solutions {
		if len(sol.Paths[0].Edges) != 1 {
			t.Errorf("multi-hop witness passed the availability floor: %v", sol.Paths[0])
		}
	}
}
