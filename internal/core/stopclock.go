package core

import "time"

// stopClock is the shared stop gate of every search loop: it samples the
// wall-clock deadline and the Options.Stop cancellation hook once per
// 256 expansions so the hot path stays cheap. The zero value never
// stops; arm it with the run's start time and options. Every searcher
// embeds one, so a change to the cancellation cadence lands in all
// algorithms at once.
type stopClock struct {
	deadline    time.Time
	hasDeadline bool
	stop        func() bool
	sinceCheck  int
	timedOut    bool
}

// arm installs the deadline (start+timeout, when timeout > 0) and the
// cancellation hook.
func (c *stopClock) arm(start time.Time, timeout time.Duration, stop func() bool) {
	if timeout > 0 {
		c.deadline = start.Add(timeout)
		c.hasDeadline = true
	}
	c.stop = stop
}

// checkDeadline returns true when the search must stop on timeout or
// cancellation.
func (c *stopClock) checkDeadline() bool {
	if c.timedOut {
		return true
	}
	if !c.hasDeadline && c.stop == nil {
		return false
	}
	c.sinceCheck++
	if c.sinceCheck >= 256 {
		c.sinceCheck = 0
		if c.hasDeadline && time.Now().After(c.deadline) {
			c.timedOut = true
		}
		if !c.timedOut && c.stop != nil && c.stop() {
			c.timedOut = true
		}
	}
	return c.timedOut
}
