package core

import (
	"sync/atomic"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/topo"
)

// hardHost returns K_n minus a perfect-ish matching covering every
// vertex. Embedding K_{n-2} into it is infeasible (every (n-2)-subset
// contains both endpoints of some removed edge) but the proof requires
// deep backtracking over an astronomically large permutation tree, so an
// uncanceled search runs essentially forever. That makes it the fixture
// for cancellation tests: progress is CPU-bound, memory stays flat (no
// solutions accumulate), and only the Stop hook (or a timeout) can end
// the run early.
func hardHost(n int) *graph.Graph {
	g := graph.NewUndirected()
	g.AddNodes(n)
	skip := make(map[[2]int]bool)
	for i := 0; i+1 < n; i += 2 {
		skip[[2]int{i, i + 1}] = true
	}
	if n%2 == 1 {
		skip[[2]int{n - 2, n - 1}] = true // odd n: double-cover the tail
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if skip[[2]int{i, j}] {
				continue
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), nil)
		}
	}
	return g
}

func hardProblem(t testing.TB) *Problem {
	t.Helper()
	p, err := NewProblem(topo.Clique(14), hardHost(26), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertCanceled checks that a run ended by the stop hook looks like a
// cancellation: fast, not exhausted, and not classified complete.
func assertCanceled(t *testing.T, name string, res *Result, elapsed, within time.Duration) {
	t.Helper()
	if elapsed > within {
		t.Errorf("%s: canceled search took %v, want < %v", name, elapsed, within)
	}
	if res.Exhausted {
		t.Errorf("%s: canceled search reported Exhausted", name)
	}
	if res.Status == StatusComplete {
		t.Errorf("%s: canceled search reported StatusComplete", name)
	}
}

// TestStopHookCancelsSearch runs each sequential algorithm on an
// instance whose full search would take far longer than any test budget,
// with a hook that asks to stop immediately. Termination within a couple
// of seconds proves the hook is polled on the hot path; the generous
// 30s timeout proves it is the hook — not the clock — doing the
// stopping.
func TestStopHookCancelsSearch(t *testing.T) {
	p := hardProblem(t)
	algos := map[string]func(*Problem, Options) *Result{
		"ECF":        ECF,
		"RWB":        RWB,
		"LNS":        LNS,
		"DynamicECF": DynamicECF,
	}
	for name, run := range algos {
		t.Run(name, func(t *testing.T) {
			var polls atomic.Int64
			opt := Options{
				Timeout: 30 * time.Second,
				Stop: func() bool {
					polls.Add(1)
					return true
				},
			}
			start := time.Now()
			res := run(p, opt)
			assertCanceled(t, name, res, time.Since(start), 5*time.Second)
			if polls.Load() == 0 {
				t.Errorf("%s: stop hook was never polled", name)
			}
		})
	}
}

// TestStopHookCancelsParallelECF flips a shared cancellation flag while
// the worker pool is mid-search, the exact shape the job engine uses.
// Run under -race this also proves the hook is safe to share across
// workers.
func TestStopHookCancelsParallelECF(t *testing.T) {
	p := hardProblem(t)
	var cancel atomic.Bool
	opt := Options{
		Timeout: 30 * time.Second,
		Workers: 4,
		Stop:    cancel.Load,
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel.Store(true)
	}()
	start := time.Now()
	res := ParallelECF(p, opt)
	assertCanceled(t, "ParallelECF", res, time.Since(start), 5*time.Second)
}

// TestStopHookNilIsNoop pins that leaving the hook nil changes nothing:
// a tiny complete search still exhausts and matches the reference count.
func TestStopHookNilIsNoop(t *testing.T) {
	p, err := NewProblem(topo.Ring(4), topo.Clique(5), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ECF(p, Options{})
	if !res.Exhausted || res.Status != StatusComplete {
		t.Fatalf("nil hook: got status %v exhausted %v, want complete exhaustive", res.Status, res.Exhausted)
	}
	want := len(naiveEmbeddings(p))
	if len(res.Solutions) != want {
		t.Fatalf("nil hook: %d solutions, reference says %d", len(res.Solutions), want)
	}
}

// TestStopHookAfterBudget cancels after a fixed poll budget and checks
// the search stops soon after, proving the hook is re-polled throughout
// the run rather than only at the start.
func TestStopHookAfterBudget(t *testing.T) {
	p := hardProblem(t)
	var polls atomic.Int64
	const budget = 50
	opt := Options{
		Timeout: 30 * time.Second,
		Stop:    func() bool { return polls.Add(1) > budget },
	}
	start := time.Now()
	res := ECF(p, opt)
	assertCanceled(t, "ECF", res, time.Since(start), 5*time.Second)
	if got := polls.Load(); got <= budget {
		t.Fatalf("expected the hook to be polled past its %d-call budget, got %d", budget, got)
	}
}
