package core

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"netembed/internal/graph"
	"netembed/internal/sets"
)

// This file is the forward-checking search engine with conflict-directed
// backjumping (FC-CBJ) that backs ECF, RWB, DynamicECF and ParallelECF.
//
// The chronological searcher (ecf.go) recomputes the candidate set of the
// node at depth d on every visit by re-intersecting the filter rows of
// all its earlier-placed neighbors: O(#earlier-neighbors × full row
// intersection) per visit, paid again for every sibling assignment. The
// FC engine inverts the bookkeeping: every unassigned query node carries
// a live domain bitset, and *assigning* a node AND-prunes only the
// domains of its not-yet-assigned neighbors — O(#future-neighbors × one
// word-parallel AND). Materializing a depth's candidates is then one
// word-wise subtraction of the in-use marks and a bitset-to-slice
// conversion. Mutations are undone through a trail of (node, saved word
// span) entries, so backtracking restores exact domain state without
// recomputation. (Injectivity is deliberately not propagated into the
// domains per assignment: an O(nq) clear loop per visit costs more than
// it prunes, so used-blocking is applied at materialization and folded
// into the conflict sets lazily at dead ends.)
//
// A domain that empties during pruning is a wipeout: the current
// assignment provably cannot extend to a solution, and the search
// rejects it *before* descending. On top of the trail the engine keeps
// per-node conflict sets (pastFC: which depths pruned this node's
// domain) and per-depth conflict sets (conf: why values at this depth
// failed). When every value at depth d fails, the engine backjumps
// straight to the deepest level that contributed to any failure instead
// of enumerating the levels in between (Prosser's FC-CBJ). Because the
// engine enumerates *all* solutions, any subtree that produced a
// solution backtracks chronologically — jumping is only ever applied to
// provably solution-free subtrees, which keeps enumeration complete and
// the solution sequence identical to the chronological searcher's.
//
// The engine runs on both filter representations: dense rows AND
// directly, sparse rows are splatted into a scratch bitset first. The
// chronological searcher is kept (unexported, selectable via
// Options.Engine = SearchChrono) as the property-test oracle and
// ablation baseline.

// postArc names one filter table constraining a later-placed neighbor,
// fed by the node expanded at the current depth.
type postArc struct {
	head  graph.NodeID // the not-yet-placed query neighbor
	table int32
}

// fcTrailEntry records one domain mutation: the words overwritten (a
// span in the shared arena), the previous cardinality, and whether the
// mutation was the pruning depth's first touch of this node's domain
// (so undo must clear the pastFC bit).
type fcTrailEntry struct {
	node      int32
	w0        int32 // first saved word index
	nw        int32 // saved word count
	off       int32 // offset into the arena
	prevCount int32
	clearFC   bool
}

// fcSearcher is the state of one FC-CBJ search. Static mode fixes the
// variable order up front (ECF/RWB); dynamic mode re-selects the
// unassigned node with the smallest live domain at every depth
// (DynamicECF's most-constrained-variable rule, now O(nq) reads of the
// maintained counts instead of a full re-intersection per open node).
type fcSearcher struct {
	p       *Problem
	f       *Filters
	opt     Options
	rng     *rand.Rand // nil for ECF, set for RWB
	dynamic bool

	nq    int
	nr    int
	words int // words per host-universe bitset

	order   []graph.NodeID // order[d] = node expanded at depth d
	depthOf []int32        // node -> depth, -1 while unassigned
	posts   [][]postArc    // static mode: tables feeding later depths

	assign   Mapping
	used     *sets.Bitset  // hosts held by assigned nodes
	dom      []sets.Bitset // live domain per query node
	domCount []int32
	candBits *sets.Bitset // materialization scratch: dom ∧ ¬used

	trail []fcTrailEntry
	arena []uint64

	// Conflict sets over the depth universe [0, nq).
	pastFC  []sets.Bitset // pastFC[node]: depths that pruned node's domain
	conf    []sets.Bitset // conf[d]: why values at depth d failed
	jumpBuf *sets.Bitset

	rowBits *sets.Bitset // sparse-row scratch
	scratch [][]int32    // per-depth candidate buffers

	// Pool-recycled backing storage (see pool.go): the shared words of
	// the dom/pastFC/conf bitset tables, and the post-arc dedup stamp.
	domBacking  []uint64
	pastBacking []uint64
	confBacking []uint64
	stamp       *tableStamp

	stopClock
	stopped bool

	// Branch-and-bound state (Options.Optimize; see objective.go). The
	// incremental partial cost rides the expand stack in costAt exactly
	// like domain words ride the trail: costAt[d+1] is written before
	// descending and simply abandoned on backtrack. Per-node lower
	// bounds are cached per domain generation — domGen[q] bumps on every
	// prune or undo touching q's domain, invalidating lbVal[q].
	optimize  bool
	obj       *objectiveEval
	costAt    []float64
	lbVal     []float64
	lbGen     []uint32
	domGen    []uint32
	bbShared  *atomic.Uint64 // ParallelECF's shared incumbent (Float64bits), nil sequentially
	incumbent float64        // best cost seen locally (+Inf until the first solution)
	best      Mapping        // incumbent mapping (recycled buffer; clone to return)
	hasBest   bool

	started   time.Time
	solutions []Mapping
	nSol      int
	stats     Stats
}

func newFCSearcher(p *Problem, f *Filters, opt Options, rng *rand.Rand, start time.Time, dynamic bool) *fcSearcher {
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	s := acquireFCSearcher()
	s.p, s.f, s.opt, s.rng, s.dynamic = p, f, opt, rng, dynamic
	s.nq, s.nr, s.words = nq, nr, (nr+63)/64
	s.assign = grow(s.assign, nq)
	s.depthOf = grow(s.depthOf, nq)
	s.scratch = grow(s.scratch, nq)
	s.trail = s.trail[:0]
	s.arena = s.arena[:0]
	s.stopped = false
	s.solutions = nil
	s.nSol = 0
	s.started = start
	s.stats = f.Stats()
	s.optimize = opt.Optimize && opt.Objective.Enabled()
	s.obj = nil
	s.bbShared = nil
	s.hasBest = false
	s.incumbent = math.Inf(1)
	if s.optimize {
		s.obj = compileObjective(opt.Objective, p.Host, opt.Index)
		s.costAt = grow(s.costAt, nq+1)
		s.costAt[0] = 0
		if !s.obj.additive && nq > 0 {
			// Max composition seeds at -Inf so the first folded term wins
			// outright, mirroring Cost's i==0 case; a zero seed would
			// absorb all-negative terms (load balance with Weight < 0) and
			// fake a 0-cost optimum. The empty query keeps the 0 seed:
			// Cost of the empty mapping is 0.
			s.costAt[0] = math.Inf(-1)
		}
		s.lbVal = grow(s.lbVal, nq)
		s.lbGen = grow(s.lbGen, nq)
		s.domGen = grow(s.domGen, nq)
		for q := 0; q < nq; q++ {
			s.lbGen[q] = ^uint32(0) // invalid: never matches a generation
			s.domGen[q] = 0
		}
		s.best = s.best[:0]
	}
	for i := range s.assign {
		s.assign[i] = -1
		s.depthOf[i] = -1
	}
	s.dom, s.domBacking = sets.ReuseBitsets(s.dom, s.domBacking, nr, nq)
	s.domCount = grow(s.domCount, nq)
	for q := 0; q < nq; q++ {
		if f.Dense() {
			s.dom[q].CopyFrom(f.baseB[q])
		} else {
			s.dom[q].AddSet(f.base[q])
		}
		s.domCount[q] = int32(len(f.base[q]))
	}
	s.used = sets.ReuseBitset(s.used, nr)
	s.candBits = sets.ReuseBitset(s.candBits, nr)
	s.pastFC, s.pastBacking = sets.ReuseBitsets(s.pastFC, s.pastBacking, nq, nq)
	s.conf, s.confBacking = sets.ReuseBitsets(s.conf, s.confBacking, nq, nq)
	s.jumpBuf = sets.ReuseBitset(s.jumpBuf, nq)
	if !f.Dense() {
		s.rowBits = sets.ReuseBitset(s.rowBits, nr)
	}
	s.arm(start, opt.Timeout, opt.Stop)
	if dynamic {
		s.order = grow(s.order, nq)
	} else {
		s.order = searchOrderInto(s.order[:0], f, opt.Order)
		for d, q := range s.order {
			s.depthOf[q] = int32(d)
		}
		s.buildPosts()
	}
	return s
}

// buildPosts precomputes, for each depth, the filter tables whose tail
// is the depth's node and whose head the order places later — the
// domains forward checking prunes when the node is assigned. It is the
// mirror image of buildPreArcs, deduplicated with the same stamp mask,
// reading the position of each node from the already-populated depthOf
// and recycling the per-depth slices across pooled searches.
func (s *fcSearcher) buildPosts() {
	p, f := s.p, s.f
	nTables := len(f.tables) + len(f.tablesB) // exactly one is populated
	if s.stamp == nil {
		s.stamp = newTableStamp(nTables)
	} else {
		s.stamp.reset(nTables)
	}
	s.posts = grow(s.posts, s.nq)
	for d, q := range s.order {
		s.stamp.next()
		post := s.posts[d][:0]
		add := func(nbr graph.NodeID) {
			if s.depthOf[nbr] <= int32(d) {
				return
			}
			for _, t := range f.arcTables[arcKey(q, nbr)] {
				if s.stamp.mark(t) {
					post = append(post, postArc{head: nbr, table: t})
				}
			}
		}
		for _, a := range p.Query.Arcs(q) {
			add(a.To)
		}
		if p.Query.Directed() {
			for _, a := range p.Query.InArcs(q) {
				add(a.To)
			}
		}
		// Prune deepest-first: the latest-ordered neighbor has been
		// intersected by the most ancestors already, so its domain is the
		// likeliest to wipe out — detecting that before paying for the
		// remaining prunes shortens every failed assignment.
		sort.Slice(post, func(a, b int) bool {
			return s.depthOf[post[a].head] > s.depthOf[post[b].head]
		})
		s.posts[d] = post
	}
}

// run drives the search from the root. The return value of search is a
// backjump target; at the root it only signals termination.
func (s *fcSearcher) run() {
	s.search(0)
}

// fcUndoTo pops trail entries down to mark, restoring domain words,
// counts and pastFC bits for the pruning depth d. The arena shrinks back
// to amark.
func (s *fcSearcher) undoTo(mark, amark, d int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := &s.trail[i]
		s.dom[e.node].RestoreSpan(s.arena[e.off:e.off+e.nw], int(e.w0))
		s.domCount[e.node] = e.prevCount
		if e.clearFC {
			s.pastFC[e.node].Clear(int32(d))
		}
		if s.optimize {
			s.domGen[e.node]++ // domain changed back: cached lower bound is stale
		}
	}
	s.trail = s.trail[:mark]
	s.arena = s.arena[:amark]
}

// wipeout records that assigning at depth d emptied node q's domain: the
// depths that pruned q are exactly the reasons this value fails.
func (s *fcSearcher) wipeout(d int, q graph.NodeID) {
	s.stats.Wipeouts++
	s.stats.WipeoutDepthSum += int64(d)
	s.conf[d].UnionWith(&s.pastFC[q])
}

// pruneRow ANDs one filter row into a future neighbor's domain and
// reports false on wipeout. A nil/empty row empties the domain outright.
//
// Static mode skips the cardinality maintenance (nothing reads counts —
// wipeouts are detected by emptiness and MRV does not run) and records
// the pruning depth in pastFC whether or not the AND removed anything:
// the arc exists, so the conservative conflict entry only shortens
// jumps, never breaks them. Dynamic mode pays the popcount to keep the
// live domain sizes the MRV pick reads, and keeps pastFC exact.
func (s *fcSearcher) pruneRow(d int, head graph.NodeID, table, r int32) bool {
	s.stats.PruneOps++
	dm := &s.dom[head]
	off := len(s.arena)
	prev := s.domCount[head]

	var row *sets.Bitset
	if s.f.Dense() {
		row = s.f.tablesB[table][r]
	} else if sl := s.f.tables[table][r]; len(sl) != 0 {
		s.rowBits.Reset()
		s.rowBits.AddSet(sl)
		row = s.rowBits
	}

	// Read-only wipeout probe first: a prune that would empty the domain
	// rejects the assignment without mutating anything — no save, no
	// trail entry, nothing to undo — and in the common non-empty case the
	// probe usually answers from the first word.
	if row == nil || !dm.Intersects(row) {
		s.wipeout(d, head)
		return false
	}

	if !s.dynamic {
		s.arena, _ = dm.IntersectSave(s.arena, row) // non-empty by the probe
		clearFC := !s.pastFC[head].Has(int32(d))
		if clearFC {
			s.pastFC[head].Set(int32(d))
		}
		s.trail = append(s.trail, fcTrailEntry{
			node: int32(head), w0: 0, nw: int32(s.words), off: int32(off),
			prevCount: prev, clearFC: clearFC,
		})
		if s.optimize {
			s.domGen[head]++
		}
		return true
	}

	s.arena = dm.SaveSpan(s.arena, 0, s.words)
	cnt := dm.IntersectCount(row)
	if cnt == int(prev) {
		// Nothing removed: this depth did not constrain head, so it must
		// not enter head's conflict set; drop the trail entry too.
		s.arena = s.arena[:off]
		return true
	}
	clearFC := false
	if !s.pastFC[head].Has(int32(d)) {
		s.pastFC[head].Set(int32(d))
		clearFC = true
	}
	s.trail = append(s.trail, fcTrailEntry{
		node: int32(head), w0: 0, nw: int32(s.words), off: int32(off),
		prevCount: prev, clearFC: clearFC,
	})
	if s.optimize {
		s.domGen[head]++
	}
	s.domCount[head] = int32(cnt)
	if cnt == 0 {
		s.wipeout(d, head)
		return false
	}
	return true
}

// forwardCheck propagates the assignment node ↦ r made at depth d: the
// filter rows toward every unassigned neighbor AND-prune that
// neighbor's domain. It reports false as soon as any future domain
// wipes out; the caller undoes via its trail mark. Injectivity is NOT
// propagated eagerly — the in-use marks are subtracted word-wise when a
// depth materializes its candidates, and the blocked-by-used conflict
// term is reconstructed lazily at dead ends (see expand) — because an
// O(nq) per-assignment clear loop costs more than it prunes.
func (s *fcSearcher) forwardCheck(d int, node graph.NodeID, r int32) bool {
	if s.dynamic {
		prune := func(nbr graph.NodeID) bool {
			if s.depthOf[nbr] >= 0 {
				return true
			}
			for _, t := range s.f.arcTables[arcKey(node, nbr)] {
				if !s.pruneRow(d, nbr, t, r) {
					return false
				}
			}
			return true
		}
		for _, a := range s.p.Query.Arcs(node) {
			if !prune(a.To) {
				return false
			}
		}
		if s.p.Query.Directed() {
			for _, a := range s.p.Query.InArcs(node) {
				if !prune(a.To) {
					return false
				}
			}
		}
		return true
	}
	for _, pa := range s.posts[d] {
		if !s.pruneRow(d, pa.head, pa.table, r) {
			return false
		}
	}
	return true
}

// pickMRV returns the unassigned node with the smallest live domain
// (ties to the lowest node ID, matching the chronological DynamicECF's
// scan order).
func (s *fcSearcher) pickMRV() graph.NodeID {
	best := graph.NodeID(-1)
	bestCount := int32(0)
	for q := 0; q < s.nq; q++ {
		if s.depthOf[q] >= 0 {
			continue
		}
		if best < 0 || s.domCount[q] < bestCount {
			best, bestCount = graph.NodeID(q), s.domCount[q]
			if bestCount == 0 {
				break // cannot do better than a dead end
			}
		}
	}
	return best
}

// search expands depth d and returns the backjump target: a value jd < d
// tells every level above d to unwind without trying further values
// until depth jd is reached. -1 unwinds the entire search (no level's
// assignment contributed to the failure — or the run was aborted, which
// the stopClock flags distinguish).
func (s *fcSearcher) search(d int) int {
	if d == s.nq {
		s.record()
		return d - 1 // a solution pins every level: backtrack chronologically
	}
	var node graph.NodeID
	if s.dynamic {
		node = s.pickMRV()
		s.order[d] = node
		s.depthOf[node] = int32(d)
	} else {
		node = s.order[d]
	}
	jd := s.expand(d, node)
	if s.dynamic {
		s.depthOf[node] = -1
	}
	return jd
}

// materialize converts node's live domain minus the in-use marks into
// the depth's scratch buffer, ascending.
func (s *fcSearcher) materialize(d int, node graph.NodeID) []int32 {
	buf := s.scratch[d][:0]
	s.candBits.CopyFrom(&s.dom[node])
	if s.candBits.AndNotWith(s.used) {
		buf = s.candBits.AppendTo(buf)
	}
	s.scratch[d] = buf
	return buf
}

func (s *fcSearcher) expand(d int, node graph.NodeID) int {
	s.conf[d].Reset()
	buf := s.materialize(d, node)
	if s.rng != nil {
		s.rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	}
	nSolBefore := s.nSol
	cutsBefore := s.stats.BoundCuts
	for _, r := range buf {
		if s.checkDeadline() || s.stopped {
			return -1
		}
		s.stats.NodesVisited++
		mark, amark := len(s.trail), len(s.arena)
		s.assign[node] = r
		s.used.Set(r)
		if s.forwardCheck(d, node, r) && s.boundOK(d, r) {
			jd := s.search(d + 1)
			if jd < d {
				s.undoTo(mark, amark, d)
				s.used.Clear(r)
				s.assign[node] = -1
				return jd
			}
		}
		s.undoTo(mark, amark, d)
		s.used.Clear(r)
		s.assign[node] = -1
	}
	if s.nSol > nSolBefore || s.stats.BoundCuts > cutsBefore || s.timedOut || s.stopped {
		// Solutions below (or an abort): chronological, so enumeration
		// stays complete. Likewise any bound cut in the subtree: a cut
		// abandons values without proving the subtree solution-free, so a
		// conflict-directed jump across it would be unsound — taint the
		// whole subtree chronological instead.
		return d - 1
	}
	s.stats.Backtracks++ // a dead-ended subtree root: no solution below
	// Conflict-directed backjump: the deepest level that pruned this
	// node's domain, holds one of its remaining values (injectivity is
	// not propagated eagerly, so the blocked-by-used term is
	// reconstructed here), or contributed to any value's failure. Depth
	// d itself can appear via wipeout unions; it is not a valid target.
	js := s.jumpBuf
	js.CopyFrom(&s.conf[d])
	js.UnionWith(&s.pastFC[node])
	if s.dynamic {
		for q := 0; q < s.nq; q++ {
			if dd := s.depthOf[q]; dd >= 0 && int(dd) < d && s.dom[node].Has(int32(s.assign[q])) {
				js.Set(dd)
			}
		}
	} else {
		for dd := 0; dd < d; dd++ {
			if s.dom[node].Has(int32(s.assign[s.order[dd]])) {
				js.Set(int32(dd))
			}
		}
	}
	js.Clear(int32(d))
	jump := js.Max()
	if jump >= 0 {
		if int(jump) < d-1 {
			s.stats.Backjumps++
		}
		s.conf[jump].UnionWith(js)
		s.conf[jump].Clear(jump)
	} else if d > 1 {
		s.stats.Backjumps++ // the whole prefix is skipped
	}
	return int(jump)
}

func (s *fcSearcher) record() {
	if s.optimize {
		s.recordIncumbent()
		return
	}
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.opt.OnSolution != nil {
		if !s.opt.OnSolution(s.assign) {
			s.stopped = true
		}
	} else {
		s.solutions = append(s.solutions, s.assign.Clone())
	}
	if s.opt.MaxSolutions > 0 && s.nSol >= s.opt.MaxSolutions {
		s.stopped = true
	}
}

// boundOK admits the assignment node ↦ r made at depth d only if the
// partial cost so far plus the sum (or max) of the per-node lower bounds
// of every still-unassigned node can still beat the incumbent. It also
// extends the incremental cost stack: costAt[d+1] is valid from here
// down. Strict pruning (≥, not >) is safe because an equal-cost
// completion cannot improve the strict-< incumbent either.
func (s *fcSearcher) boundOK(d int, r int32) bool {
	if !s.optimize {
		return true
	}
	partial := s.obj.combine(s.costAt[d], s.obj.terms[r])
	s.costAt[d+1] = partial
	inc := s.curIncumbent()
	if math.IsInf(inc, 1) {
		return true // nothing to beat yet: every branch is worth exploring
	}
	// Under a monotone fold a partial bound already under-estimates every
	// completion, so the cut can fire as soon as it crosses the
	// incumbent; with negative additive terms the comparison is only
	// sound after ALL remaining nodes are folded in.
	bound := partial
	if s.obj.monotone && bound >= inc {
		s.stats.BoundCuts++
		return false
	}
	if s.dynamic {
		for q := 0; q < s.nq; q++ {
			if s.depthOf[q] >= 0 {
				continue
			}
			bound = s.obj.combine(bound, s.nodeLB(graph.NodeID(q)))
			if s.obj.monotone && bound >= inc {
				s.stats.BoundCuts++
				return false
			}
		}
	} else {
		for dd := d + 1; dd < s.nq; dd++ {
			bound = s.obj.combine(bound, s.nodeLB(s.order[dd]))
			if s.obj.monotone && bound >= inc {
				s.stats.BoundCuts++
				return false
			}
		}
	}
	if bound >= inc {
		s.stats.BoundCuts++
		return false
	}
	return true
}

// nodeLB returns the admissible lower bound on q's term over its live
// domain, cached per domain generation.
func (s *fcSearcher) nodeLB(q graph.NodeID) float64 {
	if s.lbGen[q] == s.domGen[q] {
		return s.lbVal[q]
	}
	lb, probes := s.obj.lowerBound(&s.dom[q])
	s.stats.BoundProbes += probes
	s.lbVal[q], s.lbGen[q] = lb, s.domGen[q]
	return lb
}

// curIncumbent returns the tightest bound visible to this searcher: the
// local incumbent, further tightened by the fleet-shared bound when
// ParallelECF wired one in.
func (s *fcSearcher) curIncumbent() float64 {
	inc := s.incumbent
	if s.bbShared != nil {
		if g := math.Float64frombits(s.bbShared.Load()); g < inc {
			inc = g
		}
	}
	return inc
}

// tightenIncumbent publishes cost into the shared incumbent word iff it
// strictly improves it, looping on CAS so concurrent improvements stay
// monotone decreasing. It reports whether cost won.
func tightenIncumbent(shared *atomic.Uint64, cost float64) bool {
	for {
		old := shared.Load()
		if cost >= math.Float64frombits(old) {
			return false
		}
		if shared.CompareAndSwap(old, math.Float64bits(cost)) {
			return true
		}
	}
}

// recordIncumbent handles a complete assignment under Optimize: keep it
// only when it strictly beats the best seen, so the search degrades into
// pure pruning once the optimum is found. The cost comes from the
// incremental stack — identical arithmetic to the bounds it is compared
// against.
func (s *fcSearcher) recordIncumbent() {
	cost := s.costAt[s.nq]
	if s.nSol == 0 {
		s.stats.TimeToFirst = time.Since(s.started)
	}
	s.nSol++
	if s.bbShared != nil {
		if !tightenIncumbent(s.bbShared, cost) {
			// A sibling worker already holds something at least as good;
			// still tighten the local copy so future probes skip the load.
			if cost < s.incumbent {
				s.incumbent = cost
			}
			return
		}
	} else if cost >= s.incumbent {
		return
	}
	s.incumbent = cost
	s.best = append(s.best[:0], s.assign...)
	s.hasBest = true
	s.stats.IncumbentUpdates++
	if s.opt.OnImprove != nil {
		s.opt.OnImprove(s.assign, cost)
	}
}

func (s *fcSearcher) result() *Result {
	exhausted := !s.timedOut && !s.stopped
	if s.optimize {
		res := &Result{
			Exhausted: exhausted,
			Stats:     s.stats,
		}
		if s.hasBest {
			res.Solutions = []Mapping{s.best.Clone()}
			res.Cost = s.incumbent
		}
		res.Status = classify(exhausted, len(res.Solutions))
		res.Stats.Elapsed = time.Since(s.started)
		return res
	}
	res := &Result{
		Solutions: s.solutions,
		Exhausted: exhausted,
		Status:    classify(exhausted, s.nSol),
		Stats:     s.stats,
	}
	res.Stats.Elapsed = time.Since(s.started)
	return res
}

// tableStamp is a reusable generation-stamped seen mask over filter
// table IDs — the allocation-free replacement for the per-depth
// map[int32]bool the pre/post-arc builders used to make.
type tableStamp struct {
	gen   []int32
	round int32
}

func newTableStamp(n int) *tableStamp {
	return &tableStamp{gen: make([]int32, n)}
}

// next starts a new deduplication round.
func (t *tableStamp) next() { t.round++ }

// reset re-shapes the stamp for n table IDs, clearing all generations so
// a recycled stamp can never confuse a stale mark with a current one.
func (t *tableStamp) reset(n int) {
	if cap(t.gen) < n {
		t.gen = make([]int32, n)
	} else {
		t.gen = t.gen[:n]
		clear(t.gen)
	}
	t.round = 0
}

// mark records table id for the current round and reports whether it was
// unseen.
func (t *tableStamp) mark(id int32) bool {
	if t.gen[id] == t.round {
		return false
	}
	t.gen[id] = t.round
	return true
}

// domains is the trail-backed live-domain store the LNS and Consolidate
// searches reuse from the FC engine: one bitset per query node, mutated
// through clear/intersect so every change lands on the trail, and undone
// span-wise from a mark. (The full fcSearcher additionally needs
// conflict bookkeeping, so it carries its own copy of this machinery.)
type domains struct {
	dom   []sets.Bitset
	count []int32
	words int
	trail []fcTrailEntry
	arena []uint64
}

func newDomains(nr, nq int) *domains {
	return &domains{
		dom:   sets.MakeBitsets(nr, nq),
		count: make([]int32, nq),
		words: (nr + 63) / 64,
	}
}

// mark returns the trail/arena positions undoTo restores to.
func (ds *domains) mark() (int, int) { return len(ds.trail), len(ds.arena) }

func (ds *domains) undoTo(mark, amark int) {
	for i := len(ds.trail) - 1; i >= mark; i-- {
		e := &ds.trail[i]
		ds.dom[e.node].RestoreSpan(ds.arena[e.off:e.off+e.nw], int(e.w0))
		ds.count[e.node] = e.prevCount
	}
	ds.trail = ds.trail[:mark]
	ds.arena = ds.arena[:amark]
}

// clear removes host r from node q's domain (trail-logged) and returns
// the remaining cardinality.
func (ds *domains) clear(q graph.NodeID, r int32) int32 {
	if !ds.dom[q].Has(r) {
		return ds.count[q]
	}
	w0 := sets.WordOf(r)
	off := len(ds.arena)
	ds.arena = ds.dom[q].SaveSpan(ds.arena, w0, 1)
	ds.dom[q].Clear(r)
	ds.trail = append(ds.trail, fcTrailEntry{
		node: int32(q), w0: int32(w0), nw: 1, off: int32(off), prevCount: ds.count[q],
	})
	ds.count[q]--
	return ds.count[q]
}

// intersect ANDs row into node q's domain (trail-logged when anything
// changes) and returns the remaining cardinality.
func (ds *domains) intersect(q graph.NodeID, row *sets.Bitset) int32 {
	off := len(ds.arena)
	ds.arena = ds.dom[q].SaveSpan(ds.arena, 0, ds.words)
	cnt := int32(ds.dom[q].IntersectCount(row))
	if cnt == ds.count[q] {
		ds.arena = ds.arena[:off]
		return cnt
	}
	ds.trail = append(ds.trail, fcTrailEntry{
		node: int32(q), w0: 0, nw: int32(ds.words), off: int32(off), prevCount: ds.count[q],
	})
	ds.count[q] = cnt
	return cnt
}

// hostAdj lazily materializes per-host-node adjacency bitsets (out ∪ in
// on directed hosts, optionally including the node itself for
// consolidation's co-location). LNS and Consolidate use the rows to
// forward-prune the domains of future query neighbors; rows are built
// only for hosts the search actually assigns.
type hostAdj struct {
	g           *graph.Graph
	includeSelf bool
	rows        []*sets.Bitset
}

func newHostAdj(g *graph.Graph, includeSelf bool) *hostAdj {
	return &hostAdj{g: g, includeSelf: includeSelf, rows: make([]*sets.Bitset, g.NumNodes())}
}

func (h *hostAdj) row(r graph.NodeID) *sets.Bitset {
	if b := h.rows[r]; b != nil {
		return b
	}
	b := sets.NewBitset(h.g.NumNodes())
	for _, a := range h.g.Arcs(r) {
		b.Set(a.To)
	}
	if h.g.Directed() {
		for _, a := range h.g.InArcs(r) {
			b.Set(a.To)
		}
	}
	if h.includeSelf {
		b.Set(r)
	}
	h.rows[r] = b
	return b
}
