package core

import (
	"fmt"
	"math/rand"
	"testing"

	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
)

// These property tests pin the tentpole contract of the index-backed
// filter fast path: for every problem shape — with and without node/edge
// constraints, degree filtering on and off, loose and tight base sets,
// directed and undirected — BuildFilters with Options.Index produces
// candidate sets identical to today's full scan, which remains the
// oracle.

// sameFilters compares every observable candidate set of two filter
// builds: node admissibility, base sets, and the per-arc rows for every
// (tail, head, host) triple.
func sameFilters(t *testing.T, label string, p *Problem, oracle, indexed *Filters) {
	t.Helper()
	nq, nr := p.Query.NumNodes(), p.Host.NumNodes()
	for q := 0; q < nq; q++ {
		qid := graph.NodeID(q)
		if got, want := fmt.Sprint(indexed.nodePass[q]), fmt.Sprint(oracle.nodePass[q]); got != want {
			t.Fatalf("%s: nodePass[%d] = %v, want %v", label, q, got, want)
		}
		if got, want := fmt.Sprint(indexed.Base(qid)), fmt.Sprint(oracle.Base(qid)); got != want {
			t.Fatalf("%s: Base(%d) = %v, want %v", label, q, got, want)
		}
	}
	for tail := 0; tail < nq; tail++ {
		for head := 0; head < nq; head++ {
			for r := 0; r < nr; r++ {
				got := indexed.CandidatesGiven(graph.NodeID(tail), graph.NodeID(head), graph.NodeID(r))
				want := oracle.CandidatesGiven(graph.NodeID(tail), graph.NodeID(head), graph.NodeID(r))
				if len(got) != len(want) {
					t.Fatalf("%s: CandidatesGiven(%d,%d,%d) has %d rows, want %d",
						label, tail, head, r, len(got), len(want))
				}
				for i := range got {
					if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
						t.Fatalf("%s: CandidatesGiven(%d,%d,%d) row %d = %v, want %v",
							label, tail, head, r, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// indexProblem builds a random problem plus a matching host index. Every
// host node carries a numeric cpu attribute so node constraints have
// something to bite on.
func indexProblem(t *testing.T, seed int64, directed bool, edgeC, nodeC *expr.Program) (*Problem, *index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	host := graph.New(directed)
	nr := 8 + rng.Intn(12)
	for i := 0; i < nr; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(4))))
	}
	for u := 0; u < nr; u++ {
		for v := 0; v < nr; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() < 0.35 {
				d := 1 + rng.Float64()*99
				host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), graph.Attrs{}.
					SetNum("minDelay", d*0.9).SetNum("avgDelay", d).SetNum("maxDelay", d*1.2))
			}
		}
	}
	query := graph.New(directed)
	nq := 2 + rng.Intn(4)
	for i := 0; i < nq; i++ {
		query.AddNode("", graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(3))))
	}
	for i := 1; i < nq; i++ {
		lo, hi := rng.Float64()*40, 60+rng.Float64()*80
		query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), graph.Attrs{}.
			SetNum("minDelay", lo).SetNum("maxDelay", hi))
	}
	p, err := NewProblem(query, host, edgeC, nodeC)
	if err != nil {
		t.Fatal(err)
	}
	return p, index.Build(host, 1, index.Config{})
}

var cpuFits = expr.MustCompile("rNode.cpu >= vNode.cpu")

func TestIndexedFiltersMatchOracle(t *testing.T) {
	type shape struct {
		name  string
		edgeC *expr.Program
		nodeC *expr.Program
		opt   Options
	}
	shapes := []shape{
		{"topology-only", nil, nil, Options{}},
		{"node-constraint", nil, cpuFits, Options{}},
		{"edge-constraint", delayWindow, nil, Options{}},
		{"both-constraints", delayWindow, cpuFits, Options{}},
		{"no-degree-filter", nil, cpuFits, Options{NoDegreeFilter: true}},
		{"loose-root", delayWindow, nil, Options{LooseRoot: true}},
	}
	for _, directed := range []bool{false, true} {
		for _, sh := range shapes {
			for seed := int64(1); seed <= 8; seed++ {
				p, idx := indexProblem(t, seed, directed, sh.edgeC, sh.nodeC)
				label := fmt.Sprintf("%s directed=%v seed=%d", sh.name, directed, seed)

				scanOpt := sh.opt
				scanOpt.Repr = ReprBitset // same representation, no index
				oracle := BuildFilters(p, &scanOpt)

				idxOpt := sh.opt
				idxOpt.Index = idx
				indexed := BuildFilters(p, &idxOpt)
				if !indexed.Dense() {
					t.Fatalf("%s: index-backed filters must be dense", label)
				}
				sameFilters(t, label, p, oracle, indexed)

				// The searches over both builds enumerate identical sets.
				a := ECF(p, scanOpt)
				b := ECF(p, idxOpt)
				sameSolutionSets(t, label, b.Solutions, a.Solutions)
				if a.Status != b.Status || a.Exhausted != b.Exhausted {
					t.Fatalf("%s: outcome classification differs", label)
				}
			}
		}
	}
}

// TestIndexedFiltersSliceOracle cross-checks against the sparse
// representation too — the original full-scan path untouched by any
// bitset machinery.
func TestIndexedFiltersSliceOracle(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p, idx := indexProblem(t, 50+seed, false, delayWindow, cpuFits)
		oracle := ECF(p, Options{Repr: ReprSlice})
		indexed := ECF(p, Options{Index: idx})
		sameSolutionSets(t, fmt.Sprintf("slice oracle seed %d", seed), indexed.Solutions, oracle.Solutions)
	}
}

// TestIndexedFiltersAfterDeltas pins the end-to-end invariant the delta
// pipeline rests on: a chain of incremental index patches yields filters
// identical to a full scan of the final graph.
func TestIndexedFiltersAfterDeltas(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		p, idx := indexProblem(t, 200+seed, false, nil, cpuFits)
		host := p.Host
		for step := 0; step < 5; step++ {
			d := &graph.Delta{}
			// Capacity edit on a random node.
			r := graph.NodeID(rng.Intn(host.NumNodes()))
			d.SetNodeAttrs = append(d.SetNodeAttrs, graph.NodeAttrUpdate{
				Node: host.Node(r).Name,
				Set:  graph.Attrs{}.SetNum("cpu", float64(1+rng.Intn(4))),
			})
			// Occasionally rewire an edge.
			if host.NumEdges() > 0 && rng.Float64() < 0.5 {
				e := host.Edge(graph.EdgeID(rng.Intn(host.NumEdges())))
				d.RemoveEdges = append(d.RemoveEdges, graph.EdgeRef{
					Source: host.Node(e.From).Name, Target: host.Node(e.To).Name,
				})
			}
			next, err := host.ApplyDelta(d)
			if err != nil {
				t.Fatal(err)
			}
			idx = idx.Apply(host, next, d, uint64(step+2))
			host = next
		}
		p2, err := NewProblem(p.Query, host, nil, cpuFits)
		if err != nil {
			t.Fatal(err)
		}
		oracle := BuildFilters(p2, &Options{Repr: ReprBitset})
		indexed := BuildFilters(p2, &Options{Index: idx})
		sameFilters(t, fmt.Sprintf("after deltas seed %d", seed), p2, oracle, indexed)
	}
}

// TestIndexIgnoredWhenIncompatible: a stale index (wrong universe) or a
// forced sparse representation must fall back to the scan, not crash or
// mis-filter.
func TestIndexIgnoredWhenIncompatible(t *testing.T) {
	p, _ := indexProblem(t, 3, false, nil, nil)
	smaller := graph.NewUndirected()
	smaller.AddNodes(2)
	stale := index.Build(smaller, 1, index.Config{})
	f := BuildFilters(p, &Options{Index: stale})
	oracle := BuildFilters(p, &Options{})
	sameFilters(t, "stale index", p, oracle, f)

	p2, idx := indexProblem(t, 4, false, nil, nil)
	sliceF := BuildFilters(p2, &Options{Index: idx, Repr: ReprSlice})
	if sliceF.Dense() {
		t.Error("ReprSlice with an index should fall back to sparse scan")
	}
}
