package core

import (
	"math/rand"
	"testing"

	"netembed/internal/graph"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// These tests pin the tentpole property of the dual candidate-set
// representation: searches over bitset filter tables return exactly the
// solution sets (and, where enumeration is deterministic, the solution
// sequences) of the sorted-slice tables.

func TestChooseDense(t *testing.T) {
	cases := []struct {
		repr      Repr
		nr, edges int
		want      bool
	}{
		{ReprSlice, 64, 2000, false},            // forced sparse
		{ReprBitset, 100000, 10, true},          // forced dense
		{ReprAuto, 0, 0, false},                 // empty host
		{ReprAuto, 512, 600, true},              // small host: always dense
		{ReprAuto, 1024, 600, true},             // boundary of the word cap
		{ReprAuto, 8192, 8192, false},           // large sparse host
		{ReprAuto, 8192, 8192 * 8192 / 4, true}, // large dense host
	}
	for _, c := range cases {
		if got := chooseDense(c.repr, c.nr, c.edges); got != c.want {
			t.Errorf("chooseDense(%v, nr=%d, edges=%d) = %v, want %v",
				c.repr, c.nr, c.edges, got, c.want)
		}
	}
}

func TestReprEquivalenceECF(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		sparse := ECF(p, Options{Repr: ReprSlice})
		dense := ECF(p, Options{Repr: ReprBitset})
		sameSolutionSets(t, "ECF repr", dense.Solutions, sparse.Solutions)
		// ECF enumerates candidates ascending in both representations, so
		// even the sequence must coincide.
		if len(dense.Solutions) == len(sparse.Solutions) {
			for i := range dense.Solutions {
				if mappingKey(dense.Solutions[i]) != mappingKey(sparse.Solutions[i]) {
					t.Fatalf("seed %d: solution %d out of sequence", seed, i)
				}
			}
		}
		if dense.Status != sparse.Status || dense.Exhausted != sparse.Exhausted {
			t.Fatalf("seed %d: outcome classification differs", seed)
		}
	}
}

func TestReprEquivalenceRWB(t *testing.T) {
	// RWB shuffles the materialized candidate buffer; identical buffers
	// and identical rng draws mean identical first solutions.
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		sparse := RWB(p, Options{Repr: ReprSlice, Seed: seed})
		dense := RWB(p, Options{Repr: ReprBitset, Seed: seed})
		sameSolutionSets(t, "RWB repr", dense.Solutions, sparse.Solutions)
	}
}

func TestReprEquivalenceDynamicECF(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := smallProblem(t, seed)
		sparse := DynamicECF(p, Options{Repr: ReprSlice})
		dense := DynamicECF(p, Options{Repr: ReprBitset})
		sameSolutionSets(t, "DynamicECF repr", dense.Solutions, sparse.Solutions)
	}
}

func TestReprEquivalenceParallelECF(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p := smallProblem(t, seed)
		sparse := ParallelECF(p, Options{Workers: 4, Repr: ReprSlice})
		dense := ParallelECF(p, Options{Workers: 4, Repr: ReprBitset})
		sameSolutionSets(t, "ParallelECF repr", dense.Solutions, sparse.Solutions)
	}
}

// TestReprEquivalenceMediumHost cross-checks the representations on a
// denser PlanetLab-style host where the bitset path is the adaptive
// default, counting full solution sets.
func TestReprEquivalenceMediumHost(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(9)))
	q, _, err := topo.Subgraph(host, 12, 24, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.05)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := BuildFilters(p, &Options{})
	if !f.Dense() {
		t.Error("adaptive choice should pick the dense representation on a small dense host")
	}
	sparse := ECF(p, Options{Repr: ReprSlice, MaxSolutions: 2000})
	dense := ECF(p, Options{Repr: ReprBitset, MaxSolutions: 2000})
	if len(sparse.Solutions) == 0 {
		t.Fatal("planted query not found")
	}
	sameSolutionSets(t, "medium host repr", dense.Solutions, sparse.Solutions)
	for _, m := range dense.Solutions {
		if err := p.Verify(m); err != nil {
			t.Fatalf("bitset-path solution fails verification: %v", err)
		}
	}
}

// TestParallelECFBitsetRace exercises the shared dense filter tables from
// concurrent shard workers; run under -race it proves the workers only
// share immutable rows.
func TestParallelECFBitsetRace(t *testing.T) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 30}, rand.New(rand.NewSource(11)))
	q, _, err := topo.Subgraph(host, 10, 20, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)
	p, err := NewProblem(q, host, delayWindow, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := ParallelECF(p, Options{Workers: 8, Repr: ReprBitset, MaxSolutions: 200})
	if len(res.Solutions) == 0 {
		t.Fatal("planted query not found")
	}
	for _, m := range res.Solutions {
		if err := p.Verify(m); err != nil {
			t.Fatalf("parallel bitset solution fails verification: %v", err)
		}
	}
	serial := ECF(p, Options{Repr: ReprBitset, MaxSolutions: 0})
	got, want := solutionSet(res.Solutions), solutionSet(serial.Solutions)
	for k := range got {
		if !want[k] {
			t.Fatalf("parallel found embedding %s that serial ECF did not", k)
		}
	}
}

// TestConsolidateSaturationPruning: the saturated-host bitmap must not
// change Consolidate's answers, only skip provably packed hosts.
func TestConsolidateSaturationPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	host := graph.NewUndirected()
	nh := 6
	for i := 0; i < nh; i++ {
		host.AddNode("", graph.Attrs{}.SetNum("capacity", float64(1+rng.Intn(3))))
	}
	for u := 0; u < nh; u++ {
		for v := u + 1; v < nh; v++ {
			if rng.Float64() < 0.7 {
				host.MustAddEdge(graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
	}
	query := graph.NewUndirected()
	nq := 5
	for i := 0; i < nq; i++ {
		query.AddNode("", graph.Attrs{}.SetNum("demand", float64(1+i%2)))
	}
	for i := 1; i < nq; i++ {
		query.MustAddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), nil)
	}
	p, err := NewConsolidatedProblem(query, host, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Consolidate(p, Options{}, ConsolidateOptions{})
	for _, m := range res.Solutions {
		if err := p.VerifyConsolidated(m, ConsolidateOptions{}); err != nil {
			t.Fatalf("consolidated solution fails verification: %v", err)
		}
	}
	// Every verifying assignment the brute-force enumerator finds must be
	// in the result (the saturation pruning removes nothing feasible).
	var m Mapping = make(Mapping, nq)
	found := solutionSet(res.Solutions)
	var enumerate func(d int)
	total := 0
	enumerate = func(d int) {
		if d == nq {
			if p.VerifyConsolidated(m, ConsolidateOptions{}) == nil {
				total++
				if !found[mappingKey(m)] {
					t.Fatalf("feasible consolidated mapping %v missing from result", m)
				}
			}
			return
		}
		for r := 0; r < nh; r++ {
			m[d] = graph.NodeID(r)
			enumerate(d + 1)
		}
	}
	enumerate(0)
	if total != len(res.Solutions) {
		t.Fatalf("Consolidate returned %d solutions, brute force found %d", len(res.Solutions), total)
	}
}
