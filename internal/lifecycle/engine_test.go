package lifecycle

import (
	"context"
	"testing"
	"time"

	"netembed/internal/engine"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// TestEngineTickDrivesLifecycle wires the manager into a live engine as
// its Maintainer and lets the real maintenance tick do everything: a
// breaking delta is noticed, repaired and committed with no explicit
// CheckAll/Migrate calls, and an expiring TTL lease is pruned into the
// Expired state.
func TestEngineTickDrivesLifecycle(t *testing.T) {
	model := service.NewModel(cpuClique(6, nil))
	svc := service.New(model, service.Config{})
	eng := engine.New(svc, engine.Config{TickInterval: 5 * time.Millisecond})
	defer eng.Close(context.Background())
	m := NewManager(svc, Config{RepairInterval: time.Millisecond})
	eng.SetMaintainer(m)

	// Start the engine's workers and tick with a real job round-trip.
	if _, err := eng.SubmitWait(context.Background(), service.Request{
		Query:          topo.Line(2),
		NodeConstraint: "rNode.cpu >= 5",
	}); err != nil {
		t.Fatal(err)
	}

	durable := placeLine3(t, m, "rNode.cpu >= 5")
	ephemeral, err := m.Place(PlaceRequest{
		Request: service.Request{Query: topo.Line(2), NodeConstraint: "rNode.cpu >= 5"},
		TTL:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	setCPU(t, model, durable.Mapping["n1"], 1)

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := m.Get(durable.ID)
		exp, _ := m.Get(ephemeral.ID)
		if got.Health == Healthy && got.Repairs == 1 && exp.Health == Expired {
			if got.MigratedNodes != 1 {
				t.Fatalf("tick-driven repair moved %d nodes", got.MigratedNodes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tick never converged: durable=%+v ephemeral=%+v", got, exp)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
