package lifecycle

import (
	"errors"
	"fmt"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/service"
)

// This file is the background re-optimizer: minimal-migration repair
// plans for degraded embeddings, committed atomically through the
// ledger. The objective — violations fixed minus nodes moved — is
// realized by core.SeededRepair's neighborhood-growth loop: a plan
// moving k nodes is only ever considered after every plan moving fewer
// has been proven impossible. Path-mode embeddings get a cheaper first
// tier: re-routing broken witnesses with zero migrations, falling back
// to a (budget-capped) re-embed only when the reachability oracle's
// verdict was right that nodes must move.

// Maintain implements engine.Maintainer: the engine's tick delivers the
// ledger clock and the lease IDs its expiry sweep just pruned. Expired
// leases flip their records immediately; a model change since the last
// sweep triggers re-verification; and the repair pass runs at most once
// per RepairInterval while anything is Degraded.
func (m *Manager) Maintain(now time.Time, prunedLeases []service.LeaseID) {
	m.expireLeases(prunedLeases)
	version := m.svc.Model().Version()
	m.mu.Lock()
	stale := version != m.checkedVersion
	due := m.lastRepair.IsZero() || now.Sub(m.lastRepair) >= m.cfg.RepairInterval
	m.mu.Unlock()
	if stale {
		m.CheckAll()
	}
	if due && m.anyDegraded() {
		m.mu.Lock()
		m.lastRepair = now
		m.mu.Unlock()
		m.RepairAll()
	}
}

// expireLeases marks the records owning the pruned leases Expired.
func (m *Manager) expireLeases(pruned []service.LeaseID) {
	if len(pruned) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, lease := range pruned {
		if id, ok := m.byLease[lease]; ok {
			rec := m.recs[id]
			rec.health, rec.detail = Expired, "lease window ended"
		}
	}
}

func (m *Manager) anyDegraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range m.recs {
		if rec.health == Degraded {
			return true
		}
	}
	return false
}

// RepairAll runs one repair pass: every Degraded embedding gets a
// minimal-migration plan computed and committed. It returns how many
// repairs were committed. Records the pass proves unrepairable flip to
// Broken; failed commits (target stolen) stay Degraded for the next
// pass.
func (m *Manager) RepairAll() int {
	m.mu.Lock()
	var ids []string
	for id, rec := range m.recs {
		if rec.health == Degraded {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	committed := 0
	for _, id := range ids {
		if info, err := m.Migrate(id); err == nil && info.Health == Healthy {
			committed++
		}
	}
	return committed
}

// Migrate re-verifies one embedding against the live snapshot and, if it
// is degraded, computes and commits a minimal-migration repair plan. It
// is the handler behind POST /embeddings/{id}/migrate and the unit of
// work of RepairAll. The returned Info reflects the post-repair state;
// the error reports only operational failures (unknown or expired
// records), not an unrepairable embedding — that outcome is the Broken
// state on the Info.
func (m *Manager) Migrate(id string) (Info, error) {
	host, idx, version := m.svc.Model().SnapshotIndexed()
	m.mu.Lock()
	rec, ok := m.recs[id]
	if !ok {
		m.mu.Unlock()
		return Info{}, ErrNotFound
	}
	if rec.health == Expired {
		info := rec.info()
		m.mu.Unlock()
		return info, ErrExpired
	}
	// Re-verify first: the model may have moved since the last sweep, in
	// either direction — a healthy record needs no plan.
	m.verifyLocked(rec, host, idx, version)
	if rec.health == Healthy {
		info := rec.info()
		m.mu.Unlock()
		return info, nil
	}
	m.repairLocked(rec, host, idx, version)
	info := rec.info()
	m.mu.Unlock()
	return info, nil
}

// repairLocked computes and commits one repair plan. Callers hold m.mu
// and have verified the record is Degraded (or Broken on this very
// snapshot, in which case the plan search is a cheap re-proof).
func (m *Manager) repairLocked(rec *record, host *graph.Graph, idx *index.Index, version uint64) {
	old, _ := resolveNamed(rec.query, host, rec.named)
	marked, err := m.markedHost(rec, host)
	if err != nil {
		m.failRepair(rec, err.Error())
		return
	}
	edgeProg, nodeProg, err := m.repairPrograms(rec)
	if err != nil {
		m.failRepair(rec, err.Error())
		return
	}
	p, err := core.NewProblem(rec.query, marked, edgeProg, nodeProg)
	if err != nil {
		// Structurally impossible (host smaller than query): a proof.
		m.breakRecord(rec, version, err.Error())
		return
	}

	if rec.pathMode {
		m.repairPathLocked(rec, p, host, idx, version, old)
		return
	}

	res := core.SeededRepair(p, old, core.RepairOptions{
		Timeout:   m.cfg.RepairTimeout,
		MaxMoved:  m.maxMoved(rec),
		Objective: m.cfg.Objective,
	})
	if res.Mapping == nil {
		if res.Infeasible {
			m.breakRecord(rec, version, fmt.Sprintf(
				"no placement exists on snapshot v%d under current tenancy", version))
			return
		}
		m.failRepair(rec, fmt.Sprintf(
			"no repair within budget (destroyed %d, budget %d moves)", res.Destroyed, m.maxMoved(rec)))
		return
	}
	m.commitLocked(rec, host, version, res.Mapping, len(res.Moved), nil)
}

// repairPathLocked repairs a path-mode embedding in two tiers: re-route
// broken witnesses keeping every node in place (zero migrations), else a
// budget-capped re-embed.
func (m *Manager) repairPathLocked(rec *record, p *core.Problem, host *graph.Graph, idx *index.Index, version uint64, old core.Mapping) {
	if sol, ok := m.reroute(rec, host, idx, old); ok {
		m.commitLocked(rec, host, version, sol.Nodes, 0, witnessesOf(rec, host, sol))
		return
	}
	popt := pathOptions(rec, idx)
	popt.Timeout = m.cfg.RepairTimeout
	popt.MaxSolutions = 1
	res := core.PathEmbed(p, popt)
	if len(res.Solutions) == 0 {
		if res.Exhausted {
			m.breakRecord(rec, version, fmt.Sprintf(
				"no path embedding exists on snapshot v%d under current tenancy", version))
			return
		}
		m.failRepair(rec, "path re-embed timed out")
		return
	}
	sol := res.Solutions[0]
	moved := 0
	for q := range sol.Nodes {
		if q >= len(old) || sol.Nodes[q] != old[q] {
			moved++
		}
	}
	if budget := m.maxMoved(rec); budget > 0 && moved > budget {
		m.failRepair(rec, fmt.Sprintf("re-embed needs %d migrations, budget %d", moved, budget))
		return
	}
	m.commitLocked(rec, host, version, sol.Nodes, moved, witnessesOf(rec, host, sol))
}

// reroute attempts the zero-migration tier: keep every resolved node
// image and find fresh witnesses for all query edges on the live host.
// The reachability oracle rejects doomed pairs before any DFS runs.
func (m *Manager) reroute(rec *record, host *graph.Graph, idx *index.Index, old core.Mapping) (core.PathSolution, bool) {
	popt := pathOptions(rec, idx)
	hops := popt.MaxHops
	if hops <= 0 {
		hops = 3
	}
	p, err := core.NewProblem(rec.query, host, rec.edgeProg, rec.nodeProg)
	if err != nil {
		return core.PathSolution{}, false
	}
	for q := range old {
		if old[q] < 0 {
			return core.PathSolution{}, false // a vanished node forces migration
		}
	}
	sol := core.PathSolution{Nodes: old.Clone(), Paths: make(map[graph.EdgeID]graph.Path, rec.query.NumEdges())}
	for i := 0; i < rec.query.NumEdges(); i++ {
		qe := rec.query.Edge(graph.EdgeID(i))
		rs, rt := old[qe.From], old[qe.To]
		if idx != nil && !idx.ReachWithin(hops)[rs].Has(rt) {
			return core.PathSolution{}, false // oracle: no witness can exist
		}
		path, ok := core.FindWitness(host, qe, rs, rt, popt)
		if !ok {
			return core.PathSolution{}, false
		}
		sol.Paths[graph.EdgeID(i)] = path
	}
	if err := core.VerifyPathSolution(p, popt, sol); err != nil {
		return core.PathSolution{}, false
	}
	return sol, true
}

// commitLocked pushes a repair plan through the ledger atomically:
// Replace swaps the lease's node set to the new mapping under one ledger
// lock (allocate-new-then-release-old), so either the whole migration
// lands or — when a concurrent allocation stole a target between plan
// and commit — nothing changes and the old placement stays leased
// (rollback is the no-op).
func (m *Manager) commitLocked(rec *record, host *graph.Graph, version uint64, mapping core.Mapping, moved int, witnesses []service.PathWitness) {
	if hook := m.cfg.BeforeCommit; hook != nil {
		hook(rec.id)
	}
	err := m.svc.Ledger().Replace(rec.lease, mapping)
	switch {
	case errors.Is(err, service.ErrLeaseNotFound):
		rec.health, rec.detail = Expired, "lease gone at commit"
		return
	case err != nil:
		m.failRepair(rec, fmt.Sprintf("commit rolled back: %v", err))
		return
	}
	rec.named = makeNamed(rec.query, host, mapping)
	rec.witnesses = witnesses
	rec.health, rec.detail = Healthy, ""
	rec.checkedAt = version
	rec.repairs++
	rec.moved += moved
	m.repaired.Add(1)
	m.migratedNodes.Add(int64(moved))
}

// breakRecord records an infeasibility proof: the embedding is Broken on
// this snapshot, reported — not silently dropped — and reclassified
// Degraded the moment the model moves again.
func (m *Manager) breakRecord(rec *record, version uint64, detail string) {
	rec.health, rec.detail = Broken, detail
	rec.checkedAt = version
	m.repairFailures.Add(1)
}

// failRepair records a non-proof failure: the record stays Degraded for
// the next pass.
func (m *Manager) failRepair(rec *record, detail string) {
	rec.health = Degraded
	rec.detail = "repair failed: " + detail
	m.repairFailures.Add(1)
}

// maxMoved converts MaxMigrationFrac into the per-plan node budget.
func (m *Manager) maxMoved(rec *record) int {
	if m.cfg.MaxMigrationFrac >= 1 {
		return 0 // uncapped
	}
	budget := int(m.cfg.MaxMigrationFrac * float64(rec.query.NumNodes()))
	if budget < 1 {
		budget = 1
	}
	return budget
}

// markedHost clones the live snapshot with every node that is saturated
// by *other* tenants carrying the reservation mark, so the repair search
// only considers migration targets with a free slot. The record's own
// holds are exempt: keeping a node in place must never look like a
// conflict with itself.
func (m *Manager) markedHost(rec *record, host *graph.Graph) (*graph.Graph, error) {
	led := m.svc.Ledger()
	saturated := led.SaturatedNodes()
	if len(saturated) == 0 {
		return host, nil
	}
	own := make(map[graph.NodeID]bool)
	if lease, ok := led.Lease(rec.lease); ok {
		for _, r := range lease.Nodes {
			own[r] = true
		}
	}
	marked := host.Clone()
	markedAny := false
	for _, r := range saturated {
		if own[r] || int(r) >= marked.NumNodes() {
			continue
		}
		marked.Node(r).Attrs = marked.Node(r).Attrs.SetBool(service.ReservedAttr, true)
		markedAny = true
	}
	if !markedAny {
		return host, nil
	}
	return marked, nil
}

// repairPrograms compiles the record's constraints with the tenancy
// guard appended to the node side, mirroring the service's
// ExcludeReserved handling.
func (m *Manager) repairPrograms(rec *record) (*expr.Program, *expr.Program, error) {
	guard := "!has(rNode." + service.ReservedAttr + ")"
	nodeSrc := guard
	if rec.nodeSrc != "" {
		nodeSrc = "(" + rec.nodeSrc + ") && " + guard
	}
	nodeProg, err := expr.Compile(nodeSrc)
	if err != nil {
		return nil, nil, fmt.Errorf("lifecycle: node constraint: %w", err)
	}
	return rec.edgeProg, nodeProg, nil
}

// makeNamed renders a mapping by node names against the snapshot it was
// computed on.
func makeNamed(query, host *graph.Graph, mapping core.Mapping) service.NamedMapping {
	out := make(service.NamedMapping, len(mapping))
	for q, r := range mapping {
		out[query.Node(graph.NodeID(q)).Name] = host.Node(r).Name
	}
	return out
}

// witnessesOf renders a path solution's witnesses in the service's wire
// shape, ordered by query edge ID.
func witnessesOf(rec *record, host *graph.Graph, sol core.PathSolution) []service.PathWitness {
	out := make([]service.PathWitness, rec.query.NumEdges())
	for i := 0; i < rec.query.NumEdges(); i++ {
		qe := rec.query.Edge(graph.EdgeID(i))
		path := sol.Paths[graph.EdgeID(i)]
		names := make([]string, len(path.Nodes))
		for j, r := range path.Nodes {
			names[j] = host.Node(r).Name
		}
		out[i] = service.PathWitness{
			Source: rec.query.Node(qe.From).Name,
			Target: rec.query.Node(qe.To).Name,
			Path:   names,
			Cost:   path.Cost,
		}
	}
	return out
}
