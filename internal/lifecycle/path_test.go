package lifecycle

import (
	"strings"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/service"
)

// diamondHost is h0-h1-h2 plus the alternate route h0-h3-h2, every hop
// 10ms: the minimal substrate where one witness edge can vanish while a
// second 2-hop route keeps the same endpoints connected.
func diamondHost() *graph.Graph {
	g := graph.NewUndirected()
	for _, name := range []string{"h0", "h1", "h2", "h3"} {
		g.AddNode(name, nil)
	}
	hop := func(u, v graph.NodeID) {
		g.MustAddEdge(u, v, graph.Attrs{}.SetNum("avgDelay", 10))
	}
	hop(0, 1)
	hop(1, 2)
	hop(0, 3)
	hop(3, 2)
	return g
}

// windowQuery is a single query edge a-b demanding 15..25ms: no single
// 10ms hop qualifies, any 2-hop route (20ms) does.
func windowQuery() *graph.Graph {
	q := graph.NewUndirected()
	q.AddNode("a", nil)
	q.AddNode("b", nil)
	q.MustAddEdge(0, 1, graph.Attrs{}.SetNum("minDelay", 15).SetNum("maxDelay", 25))
	return q
}

func placePath(t testing.TB, m *Manager) Info {
	t.Helper()
	info, err := m.Place(PlaceRequest{Request: service.Request{
		Query:     windowQuery(),
		Algorithm: service.AlgoPathEmbed,
		Path:      service.PathRequestOptions{MaxHops: 2},
		Timeout:   10 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Witnesses) != 1 {
		t.Fatalf("placed with %d witnesses", len(info.Witnesses))
	}
	return info
}

// TestPathRerouteWithoutMigration pins the repair's zero-migration tier:
// when a witness hop vanishes but the mapped endpoints stay connected
// within the hop bound, the repair re-routes the witness and moves
// nothing.
func TestPathRerouteWithoutMigration(t *testing.T) {
	model := service.NewModel(diamondHost())
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	m := NewManager(svc, Config{})
	info := placePath(t, m)

	// Cut the first hop of whichever witness the placement rode.
	w := info.Witnesses[0]
	if _, err := model.Apply(&graph.Delta{RemoveEdges: []graph.EdgeRef{
		{Source: w.Path[0], Target: w.Path[1]},
	}}); err != nil {
		t.Fatal(err)
	}
	m.CheckAll()
	got, _ := m.Get(info.ID)
	if got.Health != Degraded {
		t.Fatalf("after cut: %+v", got)
	}
	// The reachability oracle already knows no migration is needed.
	if !strings.Contains(got.Detail, "re-routable without migration") {
		t.Fatalf("oracle verdict missing: %q", got.Detail)
	}

	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Healthy || got.MigratedNodes != 0 || got.Repairs != 1 {
		t.Fatalf("reroute: %+v", got)
	}
	if got.Mapping["a"] != info.Mapping["a"] || got.Mapping["b"] != info.Mapping["b"] {
		t.Fatalf("zero-migration repair moved nodes: %v -> %v", info.Mapping, got.Mapping)
	}
	nw := got.Witnesses[0]
	if len(nw.Path) != 3 || nw.Path[1] == w.Path[1] {
		t.Fatalf("witness not re-routed: %v -> %v", w.Path, nw.Path)
	}
	if nw.Cost != 20 {
		t.Errorf("re-routed witness cost %v", nw.Cost)
	}
}

// TestPathRepairMigrates pins the fallback tier: when a delta isolates a
// mapped endpoint, re-routing is impossible and the repair re-embeds
// within the migration budget.
func TestPathRepairMigrates(t *testing.T) {
	model := service.NewModel(diamondHost())
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	m := NewManager(svc, Config{})
	info := placePath(t, m)

	// Sever every edge at the witness's first node: one endpoint is now
	// isolated, so some node must move.
	first := info.Witnesses[0].Path[0]
	host, _ := model.Snapshot()
	fid, _ := host.NodeByName(first)
	var cuts []graph.EdgeRef
	for _, arc := range host.Arcs(fid) {
		cuts = append(cuts, graph.EdgeRef{Source: first, Target: host.Node(arc.To).Name})
	}
	if _, err := model.Apply(&graph.Delta{RemoveEdges: cuts}); err != nil {
		t.Fatal(err)
	}

	m.CheckAll()
	got, _ := m.Get(info.ID)
	if got.Health != Degraded || !strings.Contains(got.Detail, "repair must migrate") {
		t.Fatalf("after isolation: %+v", got)
	}
	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Healthy || got.Repairs != 1 {
		t.Fatalf("migrating path repair: %+v", got)
	}
	if got.MigratedNodes == 0 {
		t.Fatal("isolated endpoint repaired without moving anything")
	}
	for _, name := range got.Witnesses[0].Path {
		if name == first {
			t.Fatalf("repaired witness still crosses the isolated node: %v", got.Witnesses[0].Path)
		}
	}
}

// TestPathRepairBroken pins the proof path for path mode: when no
// placement with valid witnesses exists at all, the record is reported
// Broken.
func TestPathRepairBroken(t *testing.T) {
	model := service.NewModel(diamondHost())
	model.EnableIndex(index.Config{})
	svc := service.New(model, service.Config{})
	m := NewManager(svc, Config{})
	info := placePath(t, m)

	// Cut the substrate down to a single edge: no 2-hop route remains
	// anywhere, so the 15..25ms window is unsatisfiable.
	if _, err := model.Apply(&graph.Delta{RemoveEdges: []graph.EdgeRef{
		{Source: "h0", Target: "h1"},
		{Source: "h0", Target: "h3"},
		{Source: "h3", Target: "h2"},
	}}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Broken || !strings.Contains(got.Detail, "no path embedding exists") {
		t.Fatalf("unsatisfiable path repair: %+v", got)
	}
	if s := m.Stats(); s.Broken != 1 || s.RepairFailures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
