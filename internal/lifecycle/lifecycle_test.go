package lifecycle

import (
	"errors"
	"strings"
	"testing"
	"time"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/topo"
)

// cpuClique builds K_n where every node carries cpu=10 (or the override
// for listed IDs), the minimal substrate where any injective line query
// fits and a single attribute delta can break one placement node.
func cpuClique(n int, override map[int]float64) *graph.Graph {
	g := topo.Clique(n)
	for i := 0; i < n; i++ {
		cpu := 10.0
		if v, ok := override[i]; ok {
			cpu = v
		}
		g.Node(graph.NodeID(i)).Attrs = g.Node(graph.NodeID(i)).Attrs.SetNum("cpu", cpu)
	}
	return g
}

func newManager(t testing.TB, host *graph.Graph, cfg Config) (*service.Model, *service.Service, *Manager) {
	t.Helper()
	model := service.NewModel(host)
	svc := service.New(model, service.Config{})
	return model, svc, NewManager(svc, cfg)
}

func placeLine3(t testing.TB, m *Manager, constraint string) Info {
	t.Helper()
	info, err := m.Place(PlaceRequest{Request: service.Request{
		Query:          topo.Line(3),
		NodeConstraint: constraint,
		Timeout:        10 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func setCPU(t testing.TB, model *service.Model, node string, cpu float64) {
	t.Helper()
	if _, err := model.Apply(&graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{
		{Node: node, Set: graph.Attrs{}.SetNum("cpu", cpu)},
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAdoptsEmbedding(t *testing.T) {
	_, svc, m := newManager(t, cpuClique(5, nil), Config{})
	info := placeLine3(t, m, "rNode.cpu >= 5")

	if info.ID == "" || info.Health != Healthy {
		t.Fatalf("placed info = %+v", info)
	}
	if len(info.Mapping) != 3 {
		t.Fatalf("mapping %v, want 3 entries", info.Mapping)
	}
	if info.PlacedVersion != 1 || info.CheckedVersion != 1 {
		t.Errorf("versions placed=%d checked=%d", info.PlacedVersion, info.CheckedVersion)
	}
	lease, ok := svc.Ledger().Lease(info.LeaseID)
	if !ok || len(lease.Nodes) != 3 {
		t.Fatalf("lease %v ok=%v", lease, ok)
	}
	got, ok := m.Get(info.ID)
	if !ok || got.ID != info.ID {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
	if l := m.List(); len(l) != 1 || l[0].ID != info.ID {
		t.Fatalf("List = %v", l)
	}
	if s := m.Stats(); s.Active != 1 || s.Degraded != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if err := m.Release(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Ledger().Lease(info.LeaseID); ok {
		t.Error("release did not free the lease")
	}
	if _, ok := m.Get(info.ID); ok {
		t.Error("released record still listed")
	}
	if err := m.Release(info.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double release: %v", err)
	}
}

func TestPlaceRejections(t *testing.T) {
	_, _, m := newManager(t, cpuClique(5, nil), Config{})
	if _, err := m.Place(PlaceRequest{}); !errors.Is(err, service.ErrNoQuery) {
		t.Errorf("nil query: %v", err)
	}
	if _, err := m.Place(PlaceRequest{Request: service.Request{
		Query:     topo.Line(2),
		Algorithm: service.AlgoConsolidate,
	}}); !errors.Is(err, ErrConsolidate) {
		t.Errorf("consolidate: %v", err)
	}
	if _, err := m.Place(PlaceRequest{Request: service.Request{
		Query:          topo.Line(3),
		NodeConstraint: "rNode.cpu >= 1000",
	}}); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("infeasible: %v", err)
	}
}

// TestPlaceRetriesOnAllocationRace pins the fall-through: when the best
// mapping's nodes are already leased out-of-band, Place adopts the next
// feasible mapping instead of failing.
func TestPlaceRetriesOnAllocationRace(t *testing.T) {
	_, svc, m := newManager(t, cpuClique(6, nil), Config{})
	first := placeLine3(t, m, "rNode.cpu >= 5")
	second := placeLine3(t, m, "rNode.cpu >= 5")
	for name := range second.Mapping {
		if second.Mapping[name] == first.Mapping[name] {
			lease1, _ := svc.Ledger().Lease(first.LeaseID)
			lease2, _ := svc.Ledger().Lease(second.LeaseID)
			for _, r1 := range lease1.Nodes {
				for _, r2 := range lease2.Nodes {
					if r1 == r2 {
						t.Fatalf("two managed embeddings share host node %d", r1)
					}
				}
			}
		}
	}
}

func TestCheckAllDegradesAndRecovers(t *testing.T) {
	model, _, m := newManager(t, cpuClique(5, nil), Config{})
	info := placeLine3(t, m, "rNode.cpu >= 5")
	broken := info.Mapping["n1"] // the query's middle node's host

	setCPU(t, model, broken, 1)
	if unhealthy := m.CheckAll(); unhealthy != 1 {
		t.Fatalf("CheckAll = %d, want 1", unhealthy)
	}
	got, _ := m.Get(info.ID)
	if got.Health != Degraded || got.Detail == "" {
		t.Fatalf("after break: %+v", got)
	}
	if got.CheckedVersion != 2 {
		t.Errorf("checked version %d", got.CheckedVersion)
	}
	if s := m.Stats(); s.Degraded != 1 || s.Active != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// The model healing itself clears the finding without a repair.
	setCPU(t, model, broken, 10)
	if unhealthy := m.CheckAll(); unhealthy != 0 {
		t.Fatalf("CheckAll after heal = %d", unhealthy)
	}
	got, _ = m.Get(info.ID)
	if got.Health != Healthy || got.Repairs != 0 {
		t.Fatalf("after heal: %+v", got)
	}
}

func TestCheckAllReportsVanishedHost(t *testing.T) {
	model, _, m := newManager(t, cpuClique(6, nil), Config{})
	info := placeLine3(t, m, "rNode.cpu >= 5")
	gone := info.Mapping["n2"]
	if _, err := model.Apply(&graph.Delta{RemoveNodes: []string{gone}}); err != nil {
		t.Fatal(err)
	}
	m.CheckAll()
	got, _ := m.Get(info.ID)
	if got.Health != Degraded || !strings.Contains(got.Detail, gone) {
		t.Fatalf("vanished host: %+v", got)
	}
}

func TestMigrateRepairsWithOneMove(t *testing.T) {
	model, svc, m := newManager(t, cpuClique(6, nil), Config{})
	info := placeLine3(t, m, "rNode.cpu >= 5")
	brokenName := info.Mapping["n1"]
	brokenID, _ := model.Snapshot()
	broken, _ := brokenID.NodeByName(brokenName)

	setCPU(t, model, brokenName, 1)
	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Healthy {
		t.Fatalf("after migrate: %+v", got)
	}
	if got.Repairs != 1 || got.MigratedNodes != 1 {
		t.Fatalf("repairs=%d moved=%d, want 1/1", got.Repairs, got.MigratedNodes)
	}
	if got.Mapping["n0"] != info.Mapping["n0"] || got.Mapping["n2"] != info.Mapping["n2"] {
		t.Errorf("repair moved a pinned node: %v -> %v", info.Mapping, got.Mapping)
	}
	if got.Mapping["n1"] == brokenName {
		t.Error("repair kept the broken host")
	}
	// The ledger followed the migration: the vacated node is allocatable,
	// the new one is held.
	if _, err := svc.Ledger().Allocate(core.Mapping{broken}); err != nil {
		t.Errorf("vacated node not freed: %v", err)
	}
	host, _ := model.Snapshot()
	target, _ := host.NodeByName(got.Mapping["n1"])
	if _, err := svc.Ledger().Allocate(core.Mapping{target}); !errors.Is(err, service.ErrConflict) {
		t.Errorf("migrated-to node not held: %v", err)
	}
	if s := m.Stats(); s.Repaired != 1 || s.MigratedNodes != 1 || s.RepairFailures != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Idempotent: a healthy embedding migrates as a no-op.
	again, err := m.Migrate(info.ID)
	if err != nil || again.Repairs != 1 {
		t.Fatalf("migrate healthy: %+v, %v", again, err)
	}
}

func TestMigrateErrors(t *testing.T) {
	_, _, m := newManager(t, cpuClique(5, nil), Config{})
	if _, err := m.Migrate("e999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: %v", err)
	}
	info := placeLine3(t, m, "rNode.cpu >= 5")
	m.Maintain(time.Now(), []service.LeaseID{info.LeaseID})
	if _, err := m.Migrate(info.ID); !errors.Is(err, ErrExpired) {
		t.Errorf("expired: %v", err)
	}
	got, _ := m.Get(info.ID)
	if got.Health != Expired {
		t.Fatalf("pruned lease: %+v", got)
	}
	if s := m.Stats(); s.Expired != 1 || s.Active != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRepairRespectsMigrationBudget pins MaxMigrationFrac: a repair that
// would move more than the budgeted fraction of the query is refused and
// the record stays Degraded with the budget in the finding.
func TestRepairRespectsMigrationBudget(t *testing.T) {
	model, _, m := newManager(t, cpuClique(8, nil), Config{MaxMigrationFrac: 0.34})
	info := placeLine3(t, m, "rNode.cpu >= 5") // budget: 1 of 3 nodes
	setCPU(t, model, info.Mapping["n0"], 1)
	setCPU(t, model, info.Mapping["n1"], 1)

	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Degraded || !strings.Contains(got.Detail, "budget") {
		t.Fatalf("over-budget repair: %+v", got)
	}
	if s := m.Stats(); s.RepairFailures != 1 || s.Repaired != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Raising the budget is a config decision; simulate by healing one
	// node so the remaining break fits the budget.
	setCPU(t, model, info.Mapping["n0"], 10)
	got, err = m.Migrate(info.ID)
	if err != nil || got.Health != Healthy || got.MigratedNodes != 1 {
		t.Fatalf("in-budget repair: %+v, %v", got, err)
	}
}

// TestMigrateRollsBackOnStolenTarget pins the commit conflict path: a
// concurrent allocation takes every repair target between plan and
// commit, the ledger Replace refuses, and the old placement survives
// untouched — rollback is the no-op.
func TestMigrateRollsBackOnStolenTarget(t *testing.T) {
	var (
		model *service.Model
		svc   *service.Service
	)
	var stolen []service.LeaseID
	steal := true
	cfg := Config{BeforeCommit: func(id string) {
		if !steal {
			return
		}
		// Take the only free eligible spares (the clique has 5 nodes, 3
		// leased by the embedding).
		for _, r := range []graph.NodeID{3, 4} {
			if id, err := svc.Ledger().Allocate(core.Mapping{r}); err == nil {
				stolen = append(stolen, id)
			}
		}
	}}
	host := cpuClique(5, nil)
	model = service.NewModel(host)
	svc = service.New(model, service.Config{})
	m := NewManager(svc, cfg)

	info := placeLine3(t, m, "rNode.cpu >= 5")
	setCPU(t, model, info.Mapping["n1"], 1)

	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Degraded || !strings.Contains(got.Detail, "rolled back") {
		t.Fatalf("stolen target: %+v", got)
	}
	lease, ok := svc.Ledger().Lease(info.LeaseID)
	if !ok {
		t.Fatal("lease vanished on rollback")
	}
	host0, _ := model.Snapshot()
	for i, name := range []string{info.Mapping["n0"], info.Mapping["n1"], info.Mapping["n2"]} {
		r, _ := host0.NodeByName(name)
		if lease.Nodes[i] != r {
			t.Fatalf("rollback mutated the lease: %v", lease.Nodes)
		}
	}
	if s := m.Stats(); s.RepairFailures != 1 || s.Repaired != 0 {
		t.Fatalf("stats = %+v", s)
	}

	// Free the stolen nodes; the next pass completes the migration.
	steal = false
	for _, id := range stolen {
		if err := svc.Ledger().Release(id); err != nil {
			t.Fatal(err)
		}
	}
	got, err = m.Migrate(info.ID)
	if err != nil || got.Health != Healthy || got.Repairs != 1 {
		t.Fatalf("retry after steal: %+v, %v", got, err)
	}
}

// TestMaintainPacesRepairs pins the tick integration: Maintain re-sweeps
// on every model move but runs the repair pass at most once per
// RepairInterval.
func TestMaintainPacesRepairs(t *testing.T) {
	var svc *service.Service
	var model *service.Model
	var stolen []service.LeaseID
	cfg := Config{
		RepairInterval: 5 * time.Second,
		// Every commit conflicts, so the record stays Degraded and each
		// repair pass is observable as one more failure.
		BeforeCommit: func(id string) {
			for _, r := range []graph.NodeID{3, 4} {
				if lid, err := svc.Ledger().Allocate(core.Mapping{r}); err == nil {
					stolen = append(stolen, lid)
				}
			}
		},
	}
	model = service.NewModel(cpuClique(5, nil))
	svc = service.New(model, service.Config{})
	m := NewManager(svc, cfg)

	info := placeLine3(t, m, "rNode.cpu >= 5")
	setCPU(t, model, info.Mapping["n1"], 1)

	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	m.Maintain(t0, nil)
	if s := m.Stats(); s.RepairFailures != 1 {
		t.Fatalf("first tick: %+v", s)
	}
	// Free the stolen targets so the next pass conflicts at commit again
	// rather than proving infeasibility at plan time.
	for _, lid := range stolen {
		svc.Ledger().Release(lid)
	}
	stolen = nil
	m.Maintain(t0.Add(time.Second), nil)
	if s := m.Stats(); s.RepairFailures != 1 {
		t.Fatalf("paced tick ran a repair pass: %+v", s)
	}
	m.Maintain(t0.Add(6*time.Second), nil)
	if s := m.Stats(); s.RepairFailures != 2 {
		t.Fatalf("due tick did not repair: %+v", s)
	}
	got, _ := m.Get(info.ID)
	if got.Health != Degraded {
		t.Fatalf("record = %+v", got)
	}
}

// podHost builds the pinned adversarial 512-node substrate: a clique
// whose placement pockets are distinguished by pod attributes, so each
// embedding's eligible set is exact and every delta's blast radius is
// known.
func podHost() *graph.Graph {
	g := topo.Clique(512)
	set := func(id int, pod string) {
		g.Node(graph.NodeID(id)).Attrs = g.Node(graph.NodeID(id)).Attrs.SetNum(pod, 1)
	}
	for _, id := range []int{500, 501, 502} {
		set(id, "podA")
	}
	for _, id := range []int{490, 491, 492} {
		set(id, "podB")
	}
	for _, id := range []int{480, 481, 482} {
		set(id, "podC")
	}
	return g
}

// TestRepairAfterDeltaChain is the acceptance property test: a chain of
// deltas on a 512-node host breaks three embeddings; after the repair
// pass every repairable embedding is Healthy again, the seeded repair
// migrated strictly fewer nodes than a from-scratch re-embed would, and
// the unrepairable one is reported Broken — then reclassified and
// repaired when a later delta re-opens the case.
func TestRepairAfterDeltaChain(t *testing.T) {
	model, svc, m := newManager(t, podHost(), Config{})
	a := placeLine3(t, m, "rNode.podA > 0")
	b := placeLine3(t, m, "rNode.podB > 0")
	c := placeLine3(t, m, "rNode.podC > 0")

	// Delta chain: (1) pod A grows ten cheap nodes at the bottom of the ID
	// space and loses the host of a's middle node; (2) pod B loses one
	// node and gains two; (3) pod C just shrinks — two eligible hosts
	// cannot carry a 3-node line.
	podSet := func(pod string, ids ...int) []graph.NodeAttrUpdate {
		var ups []graph.NodeAttrUpdate
		for _, id := range ids {
			ups = append(ups, graph.NodeAttrUpdate{
				Node: "n" + itoa(id), Set: graph.Attrs{}.SetNum(pod, 1),
			})
		}
		return ups
	}
	if _, err := model.Apply(&graph.Delta{SetNodeAttrs: append(
		podSet("podA", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		graph.NodeAttrUpdate{Node: a.Mapping["n1"], Unset: []string{"podA"}},
	)}); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Apply(&graph.Delta{SetNodeAttrs: append(
		podSet("podB", 20, 21),
		graph.NodeAttrUpdate{Node: b.Mapping["n1"], Unset: []string{"podB"}},
	)}); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Apply(&graph.Delta{SetNodeAttrs: []graph.NodeAttrUpdate{
		{Node: c.Mapping["n1"], Unset: []string{"podC"}},
	}}); err != nil {
		t.Fatal(err)
	}

	if unhealthy := m.CheckAll(); unhealthy != 3 {
		t.Fatalf("CheckAll = %d, want 3", unhealthy)
	}
	m.Maintain(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC), nil)

	// Every repairable embedding ends Healthy.
	gotA, _ := m.Get(a.ID)
	gotB, _ := m.Get(b.ID)
	gotC, _ := m.Get(c.ID)
	if gotA.Health != Healthy || gotB.Health != Healthy {
		t.Fatalf("repairable embeddings: a=%+v b=%+v", gotA, gotB)
	}
	if gotA.MigratedNodes != 1 || gotB.MigratedNodes != 1 {
		t.Fatalf("migrations a=%d b=%d, want 1 each (minimal)",
			gotA.MigratedNodes, gotB.MigratedNodes)
	}
	// The unrepairable one is reported Broken with the proof, not dropped.
	if gotC.Health != Broken || !strings.Contains(gotC.Detail, "no placement exists") {
		t.Fatalf("unrepairable embedding: %+v", gotC)
	}
	// Brokenness is pinned to its snapshot: a re-sweep on the same version
	// keeps the class.
	m.CheckAll()
	if gotC, _ = m.Get(c.ID); gotC.Health != Broken {
		t.Fatalf("Broken did not survive a same-version sweep: %+v", gotC)
	}

	// Seeded repair strictly beats a from-scratch re-embed on migrations:
	// scratch lands in pod A's new low-ID pocket, moving every node.
	resp, err := svc.Embed(service.Request{
		Query:          topo.Line(3),
		NodeConstraint: "rNode.podA > 0",
		MaxResults:     1,
		Timeout:        10 * time.Second,
	})
	if err != nil || len(resp.Named) == 0 {
		t.Fatalf("scratch embed: %v", err)
	}
	scratchMoved := 0
	for name, host := range resp.Named[0] {
		if a.Mapping[name] != host {
			scratchMoved++
		}
	}
	if scratchMoved <= gotA.MigratedNodes {
		t.Fatalf("scratch re-embed moved %d, seeded moved %d — want strictly fewer seeded",
			scratchMoved, gotA.MigratedNodes)
	}

	// A later delta re-opens the Broken case and the next pass repairs it.
	if _, err := model.Apply(&graph.Delta{SetNodeAttrs: podSet("podC", 30)}); err != nil {
		t.Fatal(err)
	}
	m.Maintain(time.Date(2026, 8, 1, 0, 1, 0, 0, time.UTC), nil)
	if gotC, _ = m.Get(c.ID); gotC.Health != Healthy || gotC.MigratedNodes != 1 {
		t.Fatalf("re-opened case not repaired: %+v", gotC)
	}
	if s := m.Stats(); s.Repaired != 3 || s.MigratedNodes != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestMigrateUsesConfiguredObjective pins the Config.Objective plumbing
// end to end: when a repair must move a node and several refuge hosts
// are feasible, the manager's configured objective picks the cheapest,
// not merely the first found.
func TestMigrateUsesConfiguredObjective(t *testing.T) {
	host := cpuClique(7, nil)
	for i := 0; i < host.NumNodes(); i++ {
		// Distinct prices so "cheapest refuge" is unambiguous.
		id := graph.NodeID(i)
		host.Node(id).Attrs = host.Node(id).Attrs.SetNum("price", float64(3+2*i))
	}
	model, _, m := newManager(t, host, Config{
		Objective: core.Objective{Kind: core.ObjectiveAttrCost, Attr: "price"},
	})
	info := placeLine3(t, m, "rNode.cpu >= 5")

	brokenName := info.Mapping["n1"]
	setCPU(t, model, brokenName, 1)

	// The cheapest host that is unused and still satisfies the
	// constraint is where the repaired node must land.
	snap, _ := model.Snapshot()
	used := map[string]bool{}
	for _, name := range info.Mapping {
		used[name] = true
	}
	wantName, wantPrice := "", 0.0
	for i := 0; i < snap.NumNodes(); i++ {
		n := snap.Node(graph.NodeID(i))
		cpu, _ := n.Attrs.Float("cpu")
		if used[n.Name] || cpu < 5 {
			continue
		}
		price, _ := n.Attrs.Float("price")
		if wantName == "" || price < wantPrice {
			wantName, wantPrice = n.Name, price
		}
	}
	if wantName == "" {
		t.Fatal("no refuge host available")
	}

	got, err := m.Migrate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != Healthy || got.MigratedNodes != 1 {
		t.Fatalf("after migrate: %+v", got)
	}
	if got.Mapping["n1"] != wantName {
		t.Errorf("repair landed on %s, want cheapest refuge %s (price %v)",
			got.Mapping["n1"], wantName, wantPrice)
	}
}
