package lifecycle

import (
	"fmt"

	"netembed/internal/core"
	"netembed/internal/graph"
	"netembed/internal/index"
	"netembed/internal/service"
)

// This file is the health checker: after every model publish it
// re-verifies each managed embedding against the live indexed snapshot.
// Verification is name-based — structural deltas re-assign NodeIDs, so
// the stored name-keyed mapping is resolved fresh against the snapshot
// and a name that no longer resolves is itself a finding ("host
// vanished"), not a crash.

// CheckAll re-verifies every embedding against the current model
// snapshot and returns how many records are left unhealthy (Degraded or
// Broken). It runs automatically from the maintenance tick after each
// model change; tests and handlers may call it directly.
func (m *Manager) CheckAll() int {
	host, idx, version := m.svc.Model().SnapshotIndexed()
	led := m.svc.Ledger()
	m.mu.Lock()
	defer m.mu.Unlock()
	unhealthy := 0
	for _, rec := range m.recs {
		if rec.health == Expired {
			continue
		}
		if _, ok := led.Lease(rec.lease); !ok {
			// Released or pruned out-of-band; the record outlives the lease
			// for observability until Release drops it.
			rec.health, rec.detail = Expired, "lease gone"
			continue
		}
		m.verifyLocked(rec, host, idx, version)
		if rec.health != Healthy {
			unhealthy++
		}
	}
	m.checkedVersion = version
	return unhealthy
}

// verifyLocked re-verifies one record against the snapshot and updates
// its health in place: Healthy when everything checks out, Degraded with
// a detail otherwise. Broken is never assigned here — only a failed
// repair proves brokenness — but a Broken record that now verifies (or
// newly degrades for a different reason) is reclassified, so brokenness
// never outlives the snapshot that proved it.
func (m *Manager) verifyLocked(rec *record, host *graph.Graph, idx *index.Index, version uint64) {
	ok, detail := m.verifySpec(rec, host, idx)
	switch {
	case ok:
		rec.health, rec.detail = Healthy, ""
	case rec.health == Broken && rec.checkedAt == version:
		// The infeasibility proof was made against this very snapshot;
		// it still stands. Keep the class, refresh the finding.
		rec.detail = "infeasible on last repair; " + detail
	default:
		rec.health, rec.detail = Degraded, detail
	}
	rec.checkedAt = version
}

// verifySpec runs the full verification for one record: name resolution,
// injectivity, constraint verification, and — for path-mode records —
// witness route validation pre-screened by the reachability oracle.
func (m *Manager) verifySpec(rec *record, host *graph.Graph, idx *index.Index) (bool, string) {
	mapping, missing := resolveNamed(rec.query, host, rec.named)
	if missing != "" {
		return false, fmt.Sprintf("host node %q vanished", missing)
	}
	p, err := core.NewProblem(rec.query, host, rec.edgeProg, rec.nodeProg)
	if err != nil {
		// E.g. the host shrank below the query size: structurally doomed
		// until the model grows back.
		return false, err.Error()
	}
	if !rec.pathMode {
		if err := p.Verify(mapping); err != nil {
			return false, err.Error()
		}
		return true, ""
	}

	popt := pathOptions(rec, nil)
	sol, werr := resolveWitnesses(rec, host, mapping)
	if werr != "" {
		// The route itself broke. The reachability oracle distinguishes a
		// re-routable break (endpoints still connected within the hop
		// bound — a zero-migration repair) from one that forces moves.
		return false, werr + "; " + reachDetail(rec, idx, mapping, popt.MaxHops)
	}
	if err := core.VerifyPathSolution(p, popt, sol); err != nil {
		return false, err.Error()
	}
	return true, ""
}

// resolveNamed maps the record's name-keyed mapping onto the live
// snapshot. The returned mapping has -1 for vanished hosts; missing
// names the first one (empty when all resolved).
func resolveNamed(query, host *graph.Graph, named service.NamedMapping) (core.Mapping, string) {
	mapping := make(core.Mapping, query.NumNodes())
	missing := ""
	for q := 0; q < query.NumNodes(); q++ {
		qName := query.Node(graph.NodeID(q)).Name
		r, ok := host.NodeByName(named[qName])
		if !ok {
			mapping[q] = -1
			if missing == "" {
				missing = named[qName]
			}
			continue
		}
		mapping[q] = r
	}
	return mapping, missing
}

// resolveWitnesses rebuilds the record's witness routes as live host
// paths: every stored node name must still resolve and every hop must
// still be a host edge. A broken hop returns a non-empty finding.
func resolveWitnesses(rec *record, host *graph.Graph, mapping core.Mapping) (core.PathSolution, string) {
	sol := core.PathSolution{Nodes: mapping, Paths: make(map[graph.EdgeID]graph.Path, len(rec.witnesses))}
	if len(rec.witnesses) != rec.query.NumEdges() {
		return sol, fmt.Sprintf("have %d witnesses for %d query edges", len(rec.witnesses), rec.query.NumEdges())
	}
	for i, w := range rec.witnesses {
		var path graph.Path
		for j, name := range w.Path {
			r, ok := host.NodeByName(name)
			if !ok {
				return sol, fmt.Sprintf("witness %d: host node %q vanished", i, name)
			}
			path.Nodes = append(path.Nodes, r)
			if j == 0 {
				continue
			}
			e, ok := host.EdgeBetween(path.Nodes[j-1], r)
			if !ok {
				return sol, fmt.Sprintf("witness %d: host edge %s-%s vanished", i, w.Path[j-1], name)
			}
			path.Edges = append(path.Edges, e)
		}
		path.Cost = w.Cost
		sol.Paths[graph.EdgeID(i)] = path
	}
	return sol, ""
}

// reachDetail consults the hop-bounded reachability oracle: for each
// query edge, are the mapped endpoints still connected within the hop
// bound? Connected endpoints mean the break is re-routable with zero
// migrations; a disconnected pair forces node moves. Without an index
// (model not indexed) the question is left to the repair pass.
func reachDetail(rec *record, idx *index.Index, mapping core.Mapping, maxHops int) string {
	if idx == nil {
		return "reachability unknown (no index)"
	}
	if maxHops <= 0 {
		maxHops = 3 // the core searcher's default hop bound
	}
	rows := idx.ReachWithin(maxHops)
	for i := 0; i < rec.query.NumEdges(); i++ {
		qe := rec.query.Edge(graph.EdgeID(i))
		rs, rt := mapping[qe.From], mapping[qe.To]
		if rs < 0 || rt < 0 {
			continue // vanished endpoints are reported by the caller
		}
		if !rows[rs].Has(rt) {
			return fmt.Sprintf("endpoints of query edge %d unreachable within %d hops: repair must migrate", i, maxHops)
		}
	}
	return "all endpoints reachable: re-routable without migration"
}

// pathOptions assembles the core options the record's witnesses are
// verified (and re-routed) under. The optional index supplies the
// reachability oracle to the path searcher.
func pathOptions(rec *record, idx *index.Index) core.PathOptions {
	return core.PathOptions{
		MaxHops:   rec.pathOpts.MaxHops,
		DelayAttr: rec.pathOpts.DelayAttr,
		WindowLo:  rec.pathOpts.WindowLo,
		WindowHi:  rec.pathOpts.WindowHi,
		Metrics:   rec.pathOpts.Metrics,
		Index:     idx,
	}
}
