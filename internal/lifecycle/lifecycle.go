// Package lifecycle owns embeddings after they are placed. The paper's
// service (Fig. 1) treats an embedding as a one-shot answer, but the
// hosting network keeps changing underneath it: a monitor delta can
// silently invalidate every active placement, and an expiring lease just
// vanishes from the ledger. This package turns placements into
// long-lived, monitored objects:
//
//   - Place runs an embedding query, allocates a ledger lease for the
//     winning mapping and registers an Embedding record — the query
//     graph, the name-keyed mapping, any path witnesses, the lease and
//     the model version placed against.
//   - A health checker re-verifies every record against the live indexed
//     snapshot after each model publish: constraint violations, vanished
//     hosts and broken path witnesses (pre-screened by the reachability
//     oracle) classify the record Healthy, Degraded, Broken or Expired.
//   - A background re-optimizer — hooked into the engine's maintenance
//     tick via engine.Maintainer — computes minimal-migration repair
//     plans for degraded records: an LNS destroy/repair search seeded
//     with the old mapping (core.SeededRepair), whose objective is
//     violations fixed minus nodes moved, and commits them atomically
//     through the ledger (allocate-new-release-old in one Replace;
//     a conflict rolls back to the old placement untouched).
//
// Mappings are stored by node *name*, not NodeID: structural deltas
// rebuild the hosting graph with re-assigned IDs, so every sweep
// re-resolves names against the live snapshot and a vanished name is
// itself a health signal. Ledger holds are refreshed to live IDs on
// every committed repair.
package lifecycle

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netembed/internal/core"
	"netembed/internal/expr"
	"netembed/internal/graph"
	"netembed/internal/service"
)

// Health classifies an embedding against the live model snapshot.
type Health string

// Embedding health states.
const (
	// Healthy: the mapping (and every path witness) verifies against the
	// live snapshot.
	Healthy Health = "healthy"
	// Degraded: verification fails — a constraint violation, a vanished
	// host, or a broken witness — and a repair has not (yet) succeeded.
	Degraded Health = "degraded"
	// Broken: the last repair attempt proved no valid placement exists
	// on the current snapshot under the current tenancy. A later model
	// change re-opens the case (the next sweep reclassifies Degraded).
	Broken Health = "broken"
	// Expired: the backing lease ended (window expiry or out-of-band
	// release); the record is kept for observability until released.
	Expired Health = "expired"
)

// Lifecycle errors.
var (
	// ErrNotFound reports an unknown embedding ID.
	ErrNotFound = errors.New("lifecycle: embedding not found")
	// ErrNoPlacement reports that the placement query found no feasible
	// mapping (or every feasible mapping lost its allocation race).
	ErrNoPlacement = errors.New("lifecycle: no feasible placement")
	// ErrConsolidate rejects consolidate placements: they are not
	// injective, so neither lease allocation nor repair verification is
	// defined for them.
	ErrConsolidate = errors.New("lifecycle: consolidate placements are not lease-managed")
	// ErrExpired rejects operations on an expired embedding.
	ErrExpired = errors.New("lifecycle: embedding expired")
)

// PlaceRequest asks the manager to place and adopt a new embedding.
type PlaceRequest struct {
	// Request is the embedding query, exactly as the mapping service
	// takes it. ExcludeReserved is forced on (a managed placement must
	// not collide with existing tenants), and MaxResults is raised to a
	// small pool so an allocation race can fall through to the next
	// feasible mapping.
	Request service.Request
	// TTL, when positive, windows the lease [now, now+TTL); the record
	// expires with it unless renewed. Zero means hold until released.
	TTL time.Duration
}

// Info is an immutable snapshot of one managed embedding, safe to hand
// to encoders.
type Info struct {
	ID     string `json:"id"`
	Health Health `json:"health"`
	// Detail explains a non-healthy state (which constraint broke, which
	// host vanished, why the last repair failed).
	Detail string `json:"detail,omitempty"`
	// Mapping is the current placement, query node name → host node name.
	Mapping service.NamedMapping `json:"mapping"`
	// Witnesses carries path-mode witness routes (ordered by query edge
	// ID); nil for single-edge embeddings.
	Witnesses []service.PathWitness `json:"witnesses,omitempty"`
	// LeaseID is the backing reservation.
	LeaseID service.LeaseID `json:"leaseId"`
	// PlacedVersion / CheckedVersion are the model versions the embedding
	// was placed against and last verified against.
	PlacedVersion  uint64 `json:"placedVersion"`
	CheckedVersion uint64 `json:"checkedVersion"`
	// Repairs counts committed repair plans; MigratedNodes sums the
	// nodes they moved.
	Repairs       int `json:"repairs"`
	MigratedNodes int `json:"migratedNodes"`
}

// Stats is a point-in-time snapshot of the lifecycle counters, merged
// into the daemon's /stats payload next to the engine's.
type Stats struct {
	// Gauges over the registry: records whose lease still holds
	// resources, and the unhealthy subsets.
	Active   int64 `json:"embeddingsActive"`
	Degraded int64 `json:"embeddingsDegraded"`
	Broken   int64 `json:"embeddingsBroken"`
	Expired  int64 `json:"embeddingsExpired"`
	// Cumulative repair outcomes: committed plans, nodes they migrated,
	// and attempts that failed (search exhausted, budget exceeded, or
	// commit conflict).
	Repaired       int64 `json:"embeddingsRepaired"`
	MigratedNodes  int64 `json:"embeddingsMigratedNodes"`
	RepairFailures int64 `json:"embeddingsRepairFailures"`
}

// Config tunes a Manager. The zero value gets sensible defaults.
type Config struct {
	// RepairInterval paces the background re-optimizer: at most one
	// repair pass per interval, driven by the engine's maintenance tick
	// (default 5s).
	RepairInterval time.Duration
	// MaxMigrationFrac bounds each repair plan to moving at most this
	// fraction of the embedding's query nodes (rounded down, minimum 1).
	// Values <= 0 or >= 1 allow full re-embeds (default 1).
	MaxMigrationFrac float64
	// RepairTimeout bounds each per-embedding repair search (default 2s).
	RepairTimeout time.Duration
	// BeforeCommit, when non-nil, runs between computing a repair plan
	// and committing it through the ledger. It exists so conflict-path
	// tests can interpose a concurrent allocation that steals a repair
	// target; production configs leave it nil.
	BeforeCommit func(id string)
	// Objective, when enabled, tie-breaks repair plans: among the
	// minimal-migration completions SeededRepair finds, the lowest-cost
	// one under this objective wins (see core.RepairOptions.Objective).
	Objective core.Objective
}

// applyDefaults normalizes a Config in place.
//
//keycomplete:fingerprint lifecycle.Config
func (c *Config) applyDefaults() {
	if c.RepairInterval <= 0 {
		c.RepairInterval = 5 * time.Second
	}
	if c.MaxMigrationFrac <= 0 || c.MaxMigrationFrac >= 1 {
		c.MaxMigrationFrac = 1
	}
	if c.RepairTimeout <= 0 {
		c.RepairTimeout = 2 * time.Second
	}
	_ = c.BeforeCommit // test seam; nil stays nil
	_ = c.Objective    // zero value = disabled; normalized by the repair search
}

// record is the mutable registry entry behind an Info. All fields are
// guarded by Manager.mu.
type record struct {
	id    string
	query *graph.Graph
	named service.NamedMapping
	// witnesses mirrors Info.Witnesses for path-mode records.
	witnesses []service.PathWitness
	lease     service.LeaseID
	placedAt  uint64

	// The verification spec: constraint sources (kept for repair-time
	// recompilation with the tenancy guard) and their compiled programs,
	// plus path-mode options when the placement rode multi-hop witnesses.
	edgeSrc, nodeSrc   string
	edgeProg, nodeProg *expr.Program
	pathMode           bool
	pathOpts           service.PathRequestOptions

	health    Health
	detail    string
	checkedAt uint64
	repairs   int
	moved     int
}

func (r *record) info() Info {
	return Info{
		ID:             r.id,
		Health:         r.health,
		Detail:         r.detail,
		Mapping:        cloneNamed(r.named),
		Witnesses:      append([]service.PathWitness(nil), r.witnesses...),
		LeaseID:        r.lease,
		PlacedVersion:  r.placedAt,
		CheckedVersion: r.checkedAt,
		Repairs:        r.repairs,
		MigratedNodes:  r.moved,
	}
}

func cloneNamed(nm service.NamedMapping) service.NamedMapping {
	out := make(service.NamedMapping, len(nm))
	for k, v := range nm {
		out[k] = v
	}
	return out
}

// Manager is the concurrent embedding registry plus its health checker
// and background re-optimizer. It implements engine.Maintainer. Safe for
// concurrent use.
type Manager struct {
	svc *service.Service
	cfg Config

	mu      sync.Mutex
	recs    map[string]*record
	byLease map[service.LeaseID]string
	nextID  int64
	// checkedVersion is the model version the last full health sweep ran
	// against; Maintain re-sweeps only when the model moved past it.
	checkedVersion uint64
	lastRepair     time.Time

	repaired       atomic.Int64
	migratedNodes  atomic.Int64
	repairFailures atomic.Int64
}

// NewManager builds a lifecycle manager over the mapping service whose
// model and ledger it monitors. Hook it into the engine with
// Engine.SetMaintainer to drive the background health/repair loop.
func NewManager(svc *service.Service, cfg Config) *Manager {
	cfg.applyDefaults()
	return &Manager{
		svc:     svc,
		cfg:     cfg,
		recs:    make(map[string]*record),
		byLease: make(map[service.LeaseID]string),
	}
}

// Place runs the embedding query, leases the winning mapping and adopts
// it as a managed embedding. Every returned mapping is tried in order
// until one allocates cleanly, so a placement race costs a retry, not a
// failure.
//
//keycomplete:fingerprint lifecycle.PlaceRequest
func (m *Manager) Place(preq PlaceRequest) (Info, error) {
	req, ttl := preq.Request, preq.TTL
	if req.Query == nil {
		return Info{}, service.ErrNoQuery
	}
	if req.Algorithm == service.AlgoConsolidate {
		return Info{}, ErrConsolidate
	}
	req.ExcludeReserved = true
	if req.MaxResults == 0 || req.MaxResults > 8 {
		req.MaxResults = 8
	}
	resp, err := m.svc.Embed(req)
	if err != nil {
		return Info{}, err
	}
	if len(resp.Mappings) == 0 {
		return Info{}, ErrNoPlacement
	}
	edgeProg, nodeProg, err := compileSpec(req.EdgeConstraint, req.NodeConstraint)
	if err != nil {
		return Info{}, err // unreachable: Embed already compiled them
	}

	led := m.svc.Ledger()
	for i, mapping := range resp.Mappings {
		var lease service.LeaseID
		var aerr error
		if ttl > 0 {
			now := led.Now()
			lease, aerr = led.AllocateWindow(mapping, now, now.Add(ttl))
		} else {
			lease, aerr = led.Allocate(mapping)
		}
		if aerr != nil {
			if errors.Is(aerr, service.ErrConflict) {
				continue // lost the race for this mapping; try the next
			}
			return Info{}, aerr
		}
		rec := &record{
			query:     req.Query,
			named:     cloneNamed(resp.Named[i]),
			lease:     lease,
			placedAt:  resp.ModelVersion,
			edgeSrc:   req.EdgeConstraint,
			nodeSrc:   req.NodeConstraint,
			edgeProg:  edgeProg,
			nodeProg:  nodeProg,
			pathMode:  req.Algorithm == service.AlgoPathEmbed,
			pathOpts:  req.Path,
			health:    Healthy,
			checkedAt: resp.ModelVersion,
		}
		if rec.pathMode && i < len(resp.Paths) {
			rec.witnesses = append([]service.PathWitness(nil), resp.Paths[i]...)
		}
		m.mu.Lock()
		m.nextID++
		rec.id = "e" + strconv.FormatInt(m.nextID, 10)
		m.recs[rec.id] = rec
		m.byLease[lease] = rec.id
		m.mu.Unlock()
		return rec.info(), nil
	}
	return Info{}, ErrNoPlacement
}

// compileSpec compiles the record's verification programs — the raw
// constraint sources, without the service's reserved-host guard: during
// verification the embedding's own nodes hold leases and must not look
// like violations.
func compileSpec(edgeSrc, nodeSrc string) (*expr.Program, *expr.Program, error) {
	var edgeProg, nodeProg *expr.Program
	if edgeSrc != "" {
		p, err := expr.Compile(edgeSrc)
		if err != nil {
			return nil, nil, fmt.Errorf("lifecycle: edge constraint: %w", err)
		}
		edgeProg = p
	}
	if nodeSrc != "" {
		p, err := expr.Compile(nodeSrc)
		if err != nil {
			return nil, nil, fmt.Errorf("lifecycle: node constraint: %w", err)
		}
		nodeProg = p
	}
	return edgeProg, nodeProg, nil
}

// Get snapshots one embedding.
func (m *Manager) Get(id string) (Info, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return Info{}, false
	}
	return rec.info(), true
}

// List snapshots every managed embedding, ordered by ID.
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec.info())
	}
	sort.Slice(out, func(i, j int) bool {
		// IDs are "e<n>"; numeric order reads better than lexicographic.
		a, _ := strconv.Atoi(out[i].ID[1:])
		b, _ := strconv.Atoi(out[j].ID[1:])
		return a < b
	})
	return out
}

// Release frees the embedding's lease and forgets the record. Releasing
// an already-expired record just drops it.
func (m *Manager) Release(id string) error {
	m.mu.Lock()
	rec, ok := m.recs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	delete(m.recs, id)
	delete(m.byLease, rec.lease)
	lease := rec.lease
	m.mu.Unlock()
	if err := m.svc.Ledger().Release(lease); err != nil && !errors.Is(err, service.ErrLeaseNotFound) {
		return err
	}
	return nil
}

// Stats snapshots the lifecycle counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	var active, degraded, broken, expired int64
	for _, rec := range m.recs {
		switch rec.health {
		case Expired:
			expired++
			continue
		case Degraded:
			degraded++
		case Broken:
			broken++
		}
		active++
	}
	m.mu.Unlock()
	return Stats{
		Active:         active,
		Degraded:       degraded,
		Broken:         broken,
		Expired:        expired,
		Repaired:       m.repaired.Load(),
		MigratedNodes:  m.migratedNodes.Load(),
		RepairFailures: m.repairFailures.Load(),
	}
}
