package keycomplete_test

import (
	"testing"

	"netembed/internal/analysis/analysistest"
	"netembed/internal/analysis/keycomplete"
)

func TestKeycomplete(t *testing.T) {
	analysistest.Run(t, "testdata/key", keycomplete.New())
}
