// Package opts defines option types fingerprinted from another
// package, exercising the analyzer's cross-package state.
package opts

// Options tunes a search run.
type Options struct {
	Timeout int64
	Seed    int64
	// Workers only changes how the answer is computed, never the answer.
	Workers int // cachekey:ignore per-process parallelism cannot change the result set
	// Trace toggles diagnostic logging.
	Trace bool // cachekey:ignore logging side channel, not part of the answer
}
