// Package key seeds keycomplete violations: fingerprint functions that
// drop fields, stale ignore marks, and unknown type references.
package key

import "keytest/opts"

// Request is the cacheable query.
type Request struct {
	Query string
	Limit int
	Opt   opts.Options
	// Debug affects logging only.
	Debug  bool // cachekey:ignore debug flag changes log volume, not the answer
	hidden int  // unexported: never required
}

// goodKey consumes every fingerprinted field, across both packages.
//
//keycomplete:fingerprint key.Request
//keycomplete:fingerprint opts.Options
func goodKey(r Request) int {
	return len(r.Query) + r.Limit + int(r.Opt.Timeout) + int(r.Opt.Seed)
}

// litKey consumes fields as composite-literal keys.
//
//keycomplete:fingerprint opts.Options
func litKey(timeout, seed int64) opts.Options {
	return opts.Options{Timeout: timeout, Seed: seed}
}

// badKey forgets Limit.
//
//keycomplete:fingerprint key.Request
func badKey(r Request) int { // want `badKey does not consume key.Request.Limit`
	return len(r.Query) + int(r.Opt.Timeout)
}

// badNested forgets the cross-package Seed.
//
//keycomplete:fingerprint opts.Options
func badNested(o opts.Options) int64 { // want `badNested does not consume opts.Options.Seed`
	return o.Timeout
}

// staleIgnore consumes Debug even though the field is ignore-marked.
//
//keycomplete:fingerprint key.Request
func staleIgnore(r Request) int { // want `key.Request.Debug is marked // cachekey:ignore but staleIgnore consumes it`
	if r.Debug {
		return 0
	}
	return len(r.Query) + r.Limit + int(r.Opt.Timeout)
}

// unknownType names a type the driver never analyzed.
//
//keycomplete:fingerprint nope.Missing
func unknownType() { // want `keycomplete:fingerprint nope.Missing: type not found`
}

// allowedKey drops Limit, but the omission is justified per function.
//
//netembedvet:allow keycomplete prototype helper, never used for the shared cache
//keycomplete:fingerprint key.Request
func allowedKey(r Request) int {
	return len(r.Query) + int(r.Opt.Seed)
}

var sink = goodKey(Request{}) + badKey(Request{}) + staleIgnore(Request{}) + allowedKey(Request{}) + int(badNested(litKey(1, 2)))

func init() { unknownType(); _ = sink; _ = Request{}.hidden }
