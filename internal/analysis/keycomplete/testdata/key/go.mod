module keytest

go 1.23
