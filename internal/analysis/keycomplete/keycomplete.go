// Package keycomplete enforces the cache-fingerprint contract of the
// engine's request cache: a function annotated with
//
//	//keycomplete:fingerprint <pkg>.<Type>
//
// (one directive per type, in the function's doc comment) must consume
// every exported field of each listed type — by reading it through a
// selector or setting it as a composite-literal key — or the field's
// declaration must carry a `// cachekey:ignore` mark explaining why the
// field cannot change the request's answer.
//
// The contract this mechanizes: engine.requestKey hashes every
// result-shaping field of service.Request (and the option structs it
// embeds), and the service's option-assembly functions copy every
// core.Options / core.PathOptions field from fingerprinted request
// state. A field added to any of these types without updating the hash
// silently poisons the cache — two requests differing only in the new
// field would collide and replay each other's answers. That failure is
// invisible in tests (the cache still "works") and catastrophic in
// production, which is why the check is mechanical.
//
// The analyzer is stateful across packages: struct shapes and ignore
// marks are collected while analyzing the defining package (the driver
// analyzes dependencies first), so a function in package engine can
// fingerprint types from package service. Ignore marks that cover a
// field the function does consume are reported too — a stale mark is a
// lie waiting to excuse the next real omission.
package keycomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"netembed/internal/analysis"
)

const (
	directive  = "keycomplete:fingerprint"
	ignoreMark = "cachekey:ignore"
)

// New returns a fresh analyzer instance. Instances accumulate struct
// shapes across packages and must not be shared between driver runs.
func New() *analysis.Analyzer {
	s := &state{structs: make(map[string]*structInfo)}
	return &analysis.Analyzer{
		Name: "keycomplete",
		Doc:  "every exported field of a fingerprinted type must join the cache key or carry // cachekey:ignore",
		Run:  s.run,
	}
}

// structInfo is the fingerprint-relevant shape of one struct type.
type structInfo struct {
	fields  []string // exported field names, declaration order
	ignored map[string]bool
}

type state struct {
	// structs maps "pkgname.TypeName" to the shape collected from the
	// defining package. Keyed by package name, not path — that is what
	// the annotation can spell, and the repo has no name collisions.
	structs map[string]*structInfo
}

func (s *state) run(pass *analysis.Pass) error {
	s.collect(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			if roots := fingerprintRoots(fd.Doc); len(roots) > 0 {
				s.check(pass, fd, roots)
			}
		}
	}
	return nil
}

// collect records every struct type declared in the package.
func (s *state) collect(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := &structInfo{ignored: make(map[string]bool)}
			for _, f := range st.Fields.List {
				ign := hasIgnoreMark(f)
				for _, name := range f.Names {
					if !name.IsExported() {
						continue
					}
					info.fields = append(info.fields, name.Name)
					if ign {
						info.ignored[name.Name] = true
					}
				}
			}
			s.structs[pass.Pkg.Name()+"."+ts.Name.Name] = info
			return true
		})
	}
}

// hasIgnoreMark reports whether the field declaration carries
// cachekey:ignore in its doc or trailing comment. Raw comment text is
// scanned because CommentGroup.Text strips directive-shaped lines.
func hasIgnoreMark(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, ignoreMark) {
				return true
			}
		}
	}
	return false
}

// fingerprintRoots extracts the pkg.Type arguments of the fingerprint
// directives in a doc comment.
func fingerprintRoots(doc *ast.CommentGroup) []string {
	var roots []string
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, directive) {
			continue
		}
		if arg := strings.TrimSpace(strings.TrimPrefix(text, directive)); arg != "" {
			roots = append(roots, arg)
		}
	}
	return roots
}

func (s *state) check(pass *analysis.Pass, fd *ast.FuncDecl, roots []string) {
	consumed := make(map[string]bool) // "pkg.Type.Field"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if key := namedKey(sel.Recv()); key != "" {
					consumed[key+"."+x.Sel.Name] = true
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[x]
			if !ok {
				return true
			}
			key := namedKey(tv.Type)
			if key == "" {
				return true
			}
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					consumed[key+"."+id.Name] = true
				}
			}
		}
		return true
	})

	for _, root := range roots {
		info := s.structs[root]
		if info == nil {
			pass.Reportf(fd.Name.Pos(), "keycomplete:fingerprint %s: type not found in the analyzed packages (spell it as packagename.TypeName)", root)
			continue
		}
		for _, field := range info.fields {
			has := consumed[root+"."+field]
			if info.ignored[field] {
				if has {
					pass.Reportf(fd.Name.Pos(), "%s.%s is marked // cachekey:ignore but %s consumes it; drop the stale mark", root, field, fd.Name.Name)
				}
				continue
			}
			if !has {
				pass.Reportf(fd.Name.Pos(), "%s does not consume %s.%s: hash it into the key or mark the field // cachekey:ignore", fd.Name.Name, root, field)
			}
		}
	}
}

// namedKey resolves a type to its "pkgname.TypeName" key, looking
// through pointers. Non-named and universe types yield "".
func namedKey(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			if obj.Pkg() == nil {
				return ""
			}
			return obj.Pkg().Name() + "." + obj.Name()
		default:
			return ""
		}
	}
}
