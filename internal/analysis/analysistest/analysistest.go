// Package analysistest runs netembedvet analyzers over self-contained
// testdata modules and checks their diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A testdata module is an ordinary directory with its own go.mod (so
// the repo's ./... patterns never descend into it) whose files carry
// expectations on the lines where diagnostics must appear:
//
//	out.postings[k] = v // want `written without cloning`
//
// The backquoted text is a regular expression matched against the
// diagnostic message. Every diagnostic must match a want on its exact
// line, and every want must be matched by a diagnostic — seeded
// violations prove the analyzer fires, silent lines prove it stays
// quiet. Suppression (//netembedvet:allow) is applied before matching,
// so annotation behavior is testable the same way.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"netembed/internal/analysis"
	"netembed/internal/analysis/driver"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the module rooted at dir (all packages, ./...) with the
// given analyzers and enforces the want expectations in its sources.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	findings, err := driver.Run(dir, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("driver.Run(%s): %v", dir, err)
	}

	wants := collectWants(t, dir)
	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func matchWant(wants []*want, f driver.Finding) bool {
	for _, w := range wants {
		if w.matched || w.line != f.Pos.Line {
			continue
		}
		// Compare by base name: the driver reports absolute paths.
		if filepath.Base(w.file) != filepath.Base(f.Pos.Filename) {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every .go file under dir (including nested
// testdata packages) for want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, rerr := regexp.Compile(m[1])
				if rerr != nil {
					t.Fatalf("%s: bad want pattern %q: %v", path, m[1], rerr)
				}
				wants = append(wants, &want{
					file:    path,
					line:    fset.Position(c.Pos()).Line,
					pattern: re,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants under %s: %v", dir, err)
	}
	return wants
}
