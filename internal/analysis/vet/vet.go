// Package vet assembles the netembedvet analyzer suite: one place that
// both cmd/netembedvet and the integration tests use, so the checked
// contract set cannot drift between CI and the command line.
package vet

import (
	"netembed/internal/analysis"
	"netembed/internal/analysis/cowwrite"
	"netembed/internal/analysis/keycomplete"
	"netembed/internal/analysis/statsthread"
	"netembed/internal/analysis/stoppoll"
	"netembed/internal/analysis/trailbalance"
)

// All returns fresh instances of every netembedvet analyzer, in the
// order they run. Instances are stateful (keycomplete accumulates
// annotation marks across packages), so each driver run gets its own.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		stoppoll.New(),
		trailbalance.New(),
		cowwrite.New(),
		keycomplete.New(),
		statsthread.New(),
	}
}
