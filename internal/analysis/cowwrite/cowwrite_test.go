package cowwrite_test

import (
	"testing"

	"netembed/internal/analysis/analysistest"
	"netembed/internal/analysis/cowwrite"
)

func TestCowwrite(t *testing.T) {
	analysistest.Run(t, "testdata/cow", cowwrite.New())
}
