module cowtest

go 1.23
