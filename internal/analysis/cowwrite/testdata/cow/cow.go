// Package cow seeds cowwrite violations: element writes through shared
// COW storage without cloning the field first.
package cow

// Bitset mimics sets.Bitset's in-place mutators.
type Bitset struct{ words []uint64 }

func (b *Bitset) Set(i int)      { b.words[i>>6] |= 1 << (i & 63) }
func (b *Bitset) Clear(i int)    { b.words[i>>6] &^= 1 << (i & 63) }
func (b *Bitset) Clone() *Bitset { return &Bitset{append([]uint64(nil), b.words...)} }
func (b *Bitset) UnionWith(o *Bitset) {
	for i := range o.words {
		b.words[i] |= o.words[i]
	}
}

// Index mimics the COW snapshot: rows and postings may be shared with
// the previous snapshot.
type Index struct {
	version  uint64
	rows     []*Bitset          //cow:shared
	postings map[string][]int32 //cow:shared
	scratch  []int              // unmarked: free to mutate
}

// goodPatch is the clone-then-patch idiom.
func (ix *Index) goodPatch(touched []int) *Index {
	out := *ix
	out.rows = append([]*Bitset(nil), out.rows...)
	for _, r := range touched {
		out.rows[r] = out.rows[r].Clone()
		out.rows[r].Set(1)
	}
	return &out
}

// badPatch writes an element of the shared row slice without cloning.
func (ix *Index) badPatch(touched []int) *Index {
	out := *ix
	for _, r := range touched {
		out.rows[r] = &Bitset{} // want `element write of //cow:shared field rows`
	}
	return &out
}

// badMutator calls an in-place mutator through the shared storage.
func (ix *Index) badMutator(r int) {
	ix.rows[r].Set(3) // want `mutator-method write of //cow:shared field rows`
}

// badDelete deletes from the shared postings map without cloning.
func (ix *Index) badDelete(attr string) {
	delete(ix.postings, attr) // want `map write of //cow:shared field postings`
}

// goodDelete clones the map first.
func (ix *Index) goodDelete(attr string) {
	fresh := make(map[string][]int32, len(ix.postings))
	for k, v := range ix.postings {
		fresh[k] = v
	}
	ix.postings = fresh
	delete(ix.postings, attr)
}

// badAlias mutates through a bare local alias of the shared field.
func (ix *Index) badAlias(attr string, id int32) {
	p := ix.postings
	p[attr] = append(p[attr], id) // want `element write of //cow:shared field postings`
}

// badShareThenWrite re-binds from a bare read — sharing, not cloning.
func (ix *Index) badShareThenWrite(o *Index, r int) {
	ix.rows = o.rows
	ix.rows[r] = &Bitset{} // want `element write of //cow:shared field rows`
}

// goodLiteralClone clones via a composite literal field value.
func cloneIndex(ix *Index) *Index {
	out := &Index{
		version:  ix.version,
		rows:     append([]*Bitset(nil), ix.rows...),
		postings: ix.postings,
	}
	out.rows[0] = out.rows[0].Clone()
	return out
}

// goodScratch mutates an unmarked field freely.
func (ix *Index) goodScratch(i, v int) {
	ix.scratch[i] = v
}

// allowedBuilder is construction-time mutation with no clone in sight,
// justified per function: the maps it pokes were freshly made by the
// constructor and nothing shares them yet.
//
//netembedvet:allow cowwrite builder mutation runs before the first snapshot is published
func (ix *Index) allowedBuilder(attr string, id int32) {
	ix.postings[attr] = append(ix.postings[attr], id)
}
