// Package cowwrite enforces the copy-on-write snapshot contract of
// internal/graph and internal/index: a struct field marked with a
// `//cow:shared` comment holds backing storage that may be shared
// between snapshots (COW adjacency rows, ladder rungs, postings,
// attribute bags), so element-level writes through it are only legal
// after the function has re-bound the whole field to a fresh copy.
// PR 3 shipped exactly this bug: Index.patchAttrs spliced new entries
// into postings slices still shared with the previous snapshot, so
// in-flight searches saw a half-patched index.
//
// Checked mutations (through the field directly, or through a local
// alias `p := x.F`):
//
//   - element assignment:   x.F[i] = v, x.F[i].G = v, x.F[i]++
//   - map deletion:         delete(x.F, k)
//   - mutator method calls: x.F.Set(...), x.F[i].UnionWith(...), and
//     the other in-place Bitset/Attrs mutators
//
// A mutation is allowed when the same function has already re-bound
// the field wholesale (x.F = make(...), x.F = append([]T(nil),
// x.F...), a composite literal with a cloning field value, ...).
// Re-binding from a bare read of the same field (next.F = g.F) is
// sharing, not cloning, and does not license writes. The check is
// per-function and position-ordered — the COW idiom is always
// clone-then-patch in one function; construction-time mutation in
// builder methods is annotated per function with //netembedvet:allow.
package cowwrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"netembed/internal/analysis"
)

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "cowwrite",
		Doc:  "element writes through //cow:shared fields require cloning the field first",
		Run:  run,
	}
}

// mutators are methods that write their receiver in place (sets.Bitset
// and graph.Attrs surface). Calling one on shared storage mutates every
// snapshot that shares it.
var mutators = map[string]bool{
	"Set": true, "Clear": true, "Reset": true, "Fill": true,
	"Add": true, "AddSet": true, "RemoveSet": true,
	"UnionWith": true, "IntersectWith": true, "AndNotWith": true,
}

const marker = "cow:shared"

func run(pass *analysis.Pass) error {
	shared := collectShared(pass)
	if len(shared) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, shared)
		}
	}
	return nil
}

// collectShared finds every struct field in the package whose
// declaration carries the //cow:shared marker.
func collectShared(pass *analysis.Pass) map[types.Object]bool {
	shared := make(map[types.Object]bool)
	mark := func(field *ast.Field) {
		has := false
		// CommentGroup.Text() strips //name:value directive comments, which
		// is exactly the shape of the marker — scan the raw list instead.
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, cmt := range cg.List {
				if strings.Contains(cmt.Text, marker) {
					has = true
				}
			}
		}
		if !has {
			return
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				shared[obj] = true
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mark(f)
			}
			return true
		})
	}
	return shared
}

// fieldOf resolves a selector to the struct field object it reads, or
// nil for methods and package selectors.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	shared map[types.Object]bool
	// aliases maps a local object to the shared field it was bound to
	// with a bare `p := x.F` read.
	aliases map[types.Object]types.Object
	// clonedAt records, per shared field, the earliest position at
	// which the function re-bound it wholesale to a fresh value.
	clonedAt map[types.Object]token.Pos
}

// root walks an expression chain (selectors, indexes, parens, derefs)
// to the outermost shared field it passes through. indexed reports
// whether the chain goes through at least one index expression after
// the field — i.e. the expression denotes an element of the shared
// storage rather than the field itself.
func (c *checker) root(e ast.Expr, sawIndex bool) (types.Object, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if f := fieldOf(c.pass, x); f != nil && c.shared[f] {
			return f, sawIndex
		}
		return c.root(x.X, sawIndex)
	case *ast.IndexExpr:
		return c.root(x.X, true)
	case *ast.ParenExpr:
		return c.root(x.X, sawIndex)
	case *ast.StarExpr:
		return c.root(x.X, sawIndex)
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if f, ok := c.aliases[obj]; ok {
			return f, sawIndex
		}
		return nil, false
	}
	return nil, false
}

// bareFieldRead reports whether e is a plain read of field f (possibly
// parenthesized): the RHS shape that shares storage instead of cloning.
func (c *checker) bareFieldRead(e ast.Expr, f types.Object) bool {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return fieldOf(c.pass, sel) == f
}

func (c *checker) cloned(f types.Object, at token.Pos) bool {
	pos, ok := c.clonedAt[f]
	return ok && pos < at
}

func (c *checker) violation(pos token.Pos, f types.Object, what string) {
	c.pass.Reportf(pos, "%s %s of //cow:shared field %s without cloning the field first: the storage may be shared with another snapshot",
		what, "write", f.Name())
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, shared map[types.Object]bool) {
	c := &checker{
		pass:     pass,
		shared:   shared,
		aliases:  make(map[types.Object]types.Object),
		clonedAt: make(map[types.Object]token.Pos),
	}

	// First pass: record whole-field clones and bare aliases, in
	// position order (ast.Inspect visits in source order).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				// p := x.F — bare alias of a shared field.
				if id, ok := lhs.(*ast.Ident); ok && st.Tok == token.DEFINE && rhs != nil {
					if sel, ok := rhs.(*ast.SelectorExpr); ok {
						if f := fieldOf(pass, sel); f != nil && shared[f] {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								c.aliases[obj] = f
							}
						}
					}
				}
				// x.F = <fresh value> — a wholesale re-bind. Cloning from
				// a bare read of the same field is sharing, not cloning.
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if f := fieldOf(pass, sel); f != nil && shared[f] && rhs != nil && !c.bareFieldRead(rhs, f) {
						if _, seen := c.clonedAt[f]; !seen {
							c.clonedAt[f] = st.Pos()
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				f := pass.TypesInfo.Uses[key]
				if f == nil || !shared[f] || c.bareFieldRead(kv.Value, f) {
					continue
				}
				if _, seen := c.clonedAt[f]; !seen {
					c.clonedAt[f] = st.Pos()
				}
			}
		}
		return true
	})

	// Second pass: flag element-level mutations that precede any clone.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				f, indexed := c.root(lhs, false)
				if f == nil || !indexed || c.cloned(f, st.Pos()) {
					continue
				}
				c.violation(lhs.Pos(), f, "element")
			}
		case *ast.IncDecStmt:
			if f, indexed := c.root(st.X, false); f != nil && indexed && !c.cloned(f, st.Pos()) {
				c.violation(st.Pos(), f, "element")
			}
		case *ast.CallExpr:
			// delete(x.F, k)
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
				if f, _ := c.root(st.Args[0], false); f != nil && !c.cloned(f, st.Pos()) {
					c.violation(st.Pos(), f, "map")
				}
				return true
			}
			// x.F[i].Set(...) / x.F.Set(...) — in-place mutator methods.
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && mutators[sel.Sel.Name] {
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if f, _ := c.root(sel.X, false); f != nil && !c.cloned(f, st.Pos()) {
						c.violation(st.Pos(), f, "mutator-method")
					}
				}
			}
		}
		return true
	})
}
