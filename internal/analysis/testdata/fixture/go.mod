module fixture

go 1.23
