// Package fixture seeds exactly one violation per netembedvet analyzer.
// The integration test runs the real multichecker binary over this
// module and asserts the exit status and every diagnostic position.
// Each seeded line carries a `// seed:<analyzer>` marker the test reads
// back, so the expectations survive edits to this file.
package fixture

// --- stoppoll: a deadline-capable recursive search that never polls.

type searcher struct{ deadline int64 }

func (s *searcher) checkDeadline() bool { return s.deadline == 0 }

func (s *searcher) badSearch(depth int) int {
	if depth > 4 {
		return depth
	}
	return s.badSearch(depth+1) + 1 // seed:stoppoll
}

// --- trailbalance: a SaveSpan whose undo mark is discarded.

type trail struct{ depth int }

func (t *trail) SaveSpan() int   { t.depth++; return t.depth }
func (t *trail) RestoreSpan(int) { t.depth-- }

func discardSave(t *trail) {
	t.SaveSpan() // seed:trailbalance
	t.RestoreSpan(0)
}

// --- cowwrite: an element write through shared storage, no clone.

type snap struct {
	rows []int //cow:shared
}

func badWrite(s *snap, i, v int) {
	s.rows[i] = v // seed:cowwrite
}

// --- keycomplete: a fingerprint that forgets a field.

type request struct {
	Name string
	Size int
}

//keycomplete:fingerprint fixture.request
func badKey(r request) int { // seed:keycomplete
	return len(r.Name)
}

// --- statsthread: a fold that drops a counter.

type counters struct {
	Hits   int64
	Misses int64
}

//statsthread:fold fixture.counters
func badFold(dst, src *counters) { // seed:statsthread
	dst.Hits += src.Hits
}

var sink = badKey(request{}) + badWrite2()

func badWrite2() int {
	s := &snap{rows: make([]int, 4)}
	badWrite(s, 1, 2)
	discardSave(&trail{})
	badFold(&counters{}, &counters{})
	return (&searcher{deadline: 1}).badSearch(0)
}
