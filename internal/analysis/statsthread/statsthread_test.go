package statsthread_test

import (
	"testing"

	"netembed/internal/analysis/analysistest"
	"netembed/internal/analysis/statsthread"
)

func TestStatsthread(t *testing.T) {
	analysistest.Run(t, "testdata/stats", statsthread.New())
}
