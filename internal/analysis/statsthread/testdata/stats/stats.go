// Package stats seeds statsthread violations: dropped counters,
// double folds, stale and bogus except entries.
package stats

// Duration mimics time.Duration: int64 underneath, not a counter.
type Duration int64

// Stats carries search counters plus non-counter fields.
type Stats struct {
	Nodes      int64
	Backtracks int64
	Prunes     int64
	Took       Duration // named type: not a counter
	Phase      string   // non-numeric: not a counter
	hidden     int64    // unexported: not required
}

// View is a wire-format projection of Stats.
type View struct {
	N, B, P int64
}

// goodMerge folds every counter exactly once.
//
//statsthread:fold stats.Stats
func goodMerge(dst, src *Stats) {
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
	dst.Prunes += src.Prunes
	dst.Took += src.Took
}

// goodSnapshot folds all counters in one composite-literal statement,
// the wire-response shape.
//
//statsthread:fold stats.Stats
func goodSnapshot(s *Stats) View {
	return View{N: s.Nodes, B: s.Backtracks, P: s.Prunes}
}

// goodExcept intentionally skips Prunes and says so.
//
//statsthread:fold stats.Stats except Prunes
func goodExcept(dst, src *Stats) {
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
}

// badMissing drops Prunes without excepting it.
//
//statsthread:fold stats.Stats
func badMissing(dst, src *Stats) { // want `badMissing does not fold stats.Stats.Prunes`
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
}

// badDouble merges Nodes twice.
//
//statsthread:fold stats.Stats
func badDouble(dst, src *Stats) { // want `badDouble folds stats.Stats.Nodes in 2 statements`
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
	dst.Prunes += src.Prunes
	dst.Nodes += src.hidden
}

// badStaleExcept excepts Prunes but folds it anyway.
//
//statsthread:fold stats.Stats except Prunes
func badStaleExcept(dst, src *Stats) { // want `stats.Stats.Prunes is listed in except but badStaleExcept folds it`
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
	dst.Prunes += src.Prunes
}

// badBogusExcept excepts a field that is not a counter.
//
//statsthread:fold stats.Stats except Took
func badBogusExcept(dst, src *Stats) { // want `except names stats.Stats.Took, which is not an int64 counter field`
	dst.Nodes += src.Nodes
	dst.Backtracks += src.Backtracks
	dst.Prunes += src.Prunes
}

// allowedPartial drops counters with a per-function justification.
//
//netembedvet:allow statsthread debug dump, not an aggregate anyone reads back
//statsthread:fold stats.Stats
func allowedPartial(s *Stats) int64 {
	return s.Nodes
}
