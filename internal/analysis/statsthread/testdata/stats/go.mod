module statstest

go 1.23
