// Package statsthread enforces the stats-plumbing contract: every int64
// counter of a stats struct must thread through each aggregation point
// exactly once. A function annotated with
//
//	//statsthread:fold <pkg>.<Type> [except F1,F2,...]
//
// (in its doc comment) is an aggregation point — a parallel-worker
// merge, a cumulative engine fold, a wire-format response builder. The
// analyzer requires each exported int64 field of the type to be read
// through a selector in exactly one statement of the function: zero
// statements means the counter is silently dropped from that view
// (PR 5 shipped exactly this — witness-cache counters that never
// reached the /stats endpoint), two or more means it is double-merged.
//
// Counters a fold intentionally skips are listed in the except clause:
// ParallelECF's tail merge, for example, excepts the filter-build and
// path-mode counters its workers can never increment. Excepted fields
// must then appear in zero statements — an except entry covering a
// field the function does fold is stale and reported — and must name
// real int64 counters, so a counter that changes type or name cannot
// hide in an except list.
//
// Only fields of basic type int64 are counters; time.Duration fields
// (int64 underneath, but not foldable by summing statements) and
// non-numeric fields are out of scope. Statement granularity is what
// makes `dst.X += src.X` (two selector reads, one fold) count once.
package statsthread

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"netembed/internal/analysis"
)

const directive = "statsthread:fold"

// New returns a fresh analyzer instance. Instances accumulate struct
// shapes across packages and must not be shared between driver runs.
func New() *analysis.Analyzer {
	s := &state{counters: make(map[string][]string)}
	return &analysis.Analyzer{
		Name: "statsthread",
		Doc:  "every int64 stats counter must thread through each annotated fold exactly once",
		Run:  s.run,
	}
}

type state struct {
	// counters maps "pkgname.TypeName" to its exported int64 field
	// names, collected from the defining package (analyzed first).
	counters map[string][]string
}

func (s *state) run(pass *analysis.Pass) error {
	s.collect(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directive) {
					continue
				}
				s.check(pass, fd, strings.TrimSpace(strings.TrimPrefix(text, directive)))
			}
		}
	}
	return nil
}

// collect records the int64 counter fields of every struct type
// declared in the package.
func (s *state) collect(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			key := pass.Pkg.Name() + "." + ts.Name.Name
			var counters []string
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if !name.IsExported() {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if b, ok := obj.Type().(*types.Basic); ok && b.Kind() == types.Int64 {
						counters = append(counters, name.Name)
					}
				}
			}
			s.counters[key] = counters
			return true
		})
	}
}

// parseArgs splits "pkg.Type except A,B" into the type key and the
// except set.
func parseArgs(arg string) (root string, except map[string]bool) {
	except = make(map[string]bool)
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return "", except
	}
	root = fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(arg, root))
	if rest == "" {
		return root, except
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "except"))
	for _, f := range strings.Split(rest, ",") {
		if f = strings.TrimSpace(f); f != "" {
			except[f] = true
		}
	}
	return root, except
}

func (s *state) check(pass *analysis.Pass, fd *ast.FuncDecl, arg string) {
	root, except := parseArgs(arg)
	if root == "" {
		pass.Reportf(fd.Name.Pos(), "statsthread:fold needs a pkg.Type argument")
		return
	}
	counters, ok := s.counters[root]
	if !ok {
		pass.Reportf(fd.Name.Pos(), "statsthread:fold %s: type not found in the analyzed packages (spell it as packagename.TypeName)", root)
		return
	}
	isCounter := make(map[string]bool, len(counters))
	for _, c := range counters {
		isCounter[c] = true
	}
	for e := range except {
		if !isCounter[e] {
			pass.Reportf(fd.Name.Pos(), "except names %s.%s, which is not an int64 counter field", root, e)
		}
	}

	// folds[field] = positions of the distinct innermost statements that
	// read the field. stack tracks enclosing nodes: ast.Inspect pushes on
	// non-nil visits and signals pops with nil.
	folds := make(map[string]map[token.Pos]bool)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sl, ok := pass.TypesInfo.Selections[sel]
		if !ok || sl.Kind() != types.FieldVal || !isCounter[sel.Sel.Name] {
			return true
		}
		if namedKey(sl.Recv()) != root {
			return true
		}
		stmt := enclosingStmt(stack)
		if folds[sel.Sel.Name] == nil {
			folds[sel.Sel.Name] = make(map[token.Pos]bool)
		}
		folds[sel.Sel.Name][stmt] = true
		return true
	})

	for _, c := range counters {
		n := len(folds[c])
		switch {
		case except[c] && n > 0:
			pass.Reportf(fd.Name.Pos(), "%s.%s is listed in except but %s folds it; drop it from the except list", root, c, fd.Name.Name)
		case !except[c] && n == 0:
			pass.Reportf(fd.Name.Pos(), "%s does not fold %s.%s: the counter is dropped from this aggregate (merge it, or list it in except)", fd.Name.Name, root, c)
		case !except[c] && n > 1:
			pass.Reportf(fd.Name.Pos(), "%s folds %s.%s in %d statements: counters must be merged exactly once", fd.Name.Name, root, c, n)
		}
	}
}

// enclosingStmt returns the position of the innermost statement on the
// stack, or the function body's position when the selector is outside
// any statement (impossible in practice).
func enclosingStmt(stack []ast.Node) token.Pos {
	for i := len(stack) - 1; i >= 0; i-- {
		if st, ok := stack[i].(ast.Stmt); ok {
			return st.Pos()
		}
	}
	return stack[0].Pos()
}

// namedKey resolves a type to its "pkgname.TypeName" key, looking
// through pointers.
func namedKey(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			if obj.Pkg() == nil {
				return ""
			}
			return obj.Pkg().Name() + "." + obj.Name()
		default:
			return ""
		}
	}
}
