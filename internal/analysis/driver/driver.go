// Package driver loads Go packages from source and runs netembedvet
// analyzers over them. It is the stdlib-only stand-in for
// golang.org/x/tools/go/packages plus the multichecker driver: package
// metadata and export data come from `go list -export -deps -json`,
// target packages are re-parsed and type-checked from source (so
// analyzers see comments and positions), and dependencies are imported
// from compiled export data via go/importer's lookup hook.
//
// Packages are analyzed in dependency order, so a stateful analyzer
// (keycomplete records //cachekey:ignore marks on type declarations)
// always sees a type's defining package before its consumers, as long
// as both are in the run's patterns. Run over ./... for full fidelity.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"netembed/internal/analysis"
)

// Finding is one unsuppressed diagnostic from a run.
type Finding struct {
	Analyzer string
	Message  string
	Pos      token.Position
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// listPackage is the subset of `go list -json` output the driver reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Run loads the packages matching patterns in module directory dir and
// applies every analyzer to each, in dependency order. The returned
// findings exclude diagnostics suppressed by a
// `//netembedvet:allow <analyzer> <reason>` comment (same line, the
// line above, or the doc comment of the enclosing declaration; a bare
// allow without a reason suppresses nothing). Findings are sorted by
// position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	targets := make(map[string]*listPackage)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets[p.ImportPath] = p
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q (package not in `go list -deps` closure)", path)
		}
		return os.Open(f)
	})

	var findings []Finding
	for _, p := range topoOrder(targets) {
		fs, err := runPackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// load shells out to `go list -export -deps -json`. The -export flag
// compiles whatever is stale, so a run doubles as a build check: a
// package that does not compile fails the load with the go tool's
// error text.
func load(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listPackage
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// topoOrder sorts the target packages so every package follows its
// in-target imports (dependency-first). Ties break by import path for
// deterministic output.
func topoOrder(targets map[string]*listPackage) []*listPackage {
	paths := make([]string, 0, len(targets))
	for p := range targets {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var order []*listPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := targets[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		state[path] = 2
		order = append(order, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return order
}

// runPackage parses, type-checks and analyzes one package, then filters
// the diagnostics through the allow annotations.
func runPackage(fset *token.FileSet, imp types.Importer, p *listPackage, analyzers []*analysis.Analyzer) ([]Finding, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}

	allow := collectAllows(fset, files)
	var findings []Finding
	for _, az := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  az,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := az.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if allow.suppressed(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Message: d.Message, Pos: pos})
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", az.Name, p.ImportPath, err)
		}
	}
	return findings, nil
}

// allowIndex records where //netembedvet:allow annotations apply: exact
// source lines (the comment's own line, reaching one line down when it
// stands alone) and whole declaration ranges (annotation in a doc
// comment).
type allowIndex struct {
	// lines maps filename -> line -> analyzer names allowed there.
	lines map[string]map[int]map[string]bool
	// spans holds declaration ranges covered by a doc-comment allow.
	spans []allowSpan
}

type allowSpan struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
}

const allowPrefix = "netembedvet:allow"

// parseAllow extracts the analyzer name from one allow comment, or ""
// if the comment is not a well-formed allow. The reason is mandatory:
// an annotation that doesn't say why suppresses nothing, so every
// exception in the tree documents its justification.
func parseAllow(text string) string {
	text = strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), allowPrefix)
	if text == "" || (text[0] != ' ' && text[0] != '\t') {
		return ""
	}
	fields := strings.Fields(text)
	if len(fields) < 2 { // analyzer name + at least one word of reason
		return ""
	}
	return fields[0]
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{lines: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, allowPrefix) {
					continue
				}
				name := parseAllow(c.Text)
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.lines[pos.Filename] = byLine
				}
				mark := func(line int) {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					byLine[line][name] = true
				}
				mark(pos.Line)
				mark(pos.Line + 1) // a standalone allow covers the next line
			}
		}
		// Doc-comment allows cover the whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				name := parseAllow(c.Text)
				if name == "" {
					continue
				}
				start := fset.Position(decl.Pos())
				end := fset.Position(decl.End())
				idx.spans = append(idx.spans, allowSpan{
					file: start.Filename, start: start.Line, end: end.Line, analyzer: name,
				})
			}
		}
	}
	return idx
}

func (a *allowIndex) suppressed(analyzer string, pos token.Position) bool {
	if byLine := a.lines[pos.Filename]; byLine != nil && byLine[pos.Line][analyzer] {
		return true
	}
	for _, s := range a.spans {
		if s.analyzer == analyzer && s.file == pos.Filename && s.start <= pos.Line && pos.Line <= s.end {
			return true
		}
	}
	return false
}
