package analysis_test

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNetembedvetOnFixture runs the real multichecker binary (via `go
// run`, the same entry point CI uses) over the seeded fixture module
// and asserts the exit status and every diagnostic position. This is
// the test that pins the CI lint job's failure behavior: if the driver
// stopped loading packages, stopped reporting, or an analyzer went
// silent, the expected findings disappear and this test fails.
func TestNetembedvetOnFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the netembedvet binary")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	seeds := collectSeeds(t, filepath.Join(repoRoot, "internal", "analysis", "testdata", "fixture", "fixture.go"))
	if len(seeds) == 0 {
		t.Fatal("fixture has no seed markers")
	}

	cmd := exec.Command("go", "run", "./cmd/netembedvet", "-C", filepath.Join("internal", "analysis", "testdata", "fixture"), "./...")
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()

	// Findings must exit 1 — not 0 (CI would pass on violations) and
	// not 2 (a driver failure would mask what the analyzers think).
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("netembedvet on the seeded fixture: want exit 1, got err=%v\noutput:\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("netembedvet exit code = %d, want 1\noutput:\n%s", code, out)
	}

	for analyzer, line := range seeds {
		re := regexp.MustCompile(fmt.Sprintf(`fixture\.go:%d:\d+: .+ \(%s\)`, line, analyzer))
		if !re.Match(out) {
			t.Errorf("no %s diagnostic at fixture.go:%d\noutput:\n%s", analyzer, line, out)
		}
	}
	if want := fmt.Sprintf("netembedvet: %d finding(s)", len(seeds)); !strings.Contains(string(out), want) {
		t.Errorf("output does not report %q (extra or missing findings)\noutput:\n%s", want, out)
	}
}

// collectSeeds maps analyzer name -> line number for every
// `// seed:<analyzer>` marker in the fixture.
func collectSeeds(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	seeds := make(map[string]int)
	re := regexp.MustCompile(`// seed:([a-z]+)`)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			if prev, dup := seeds[m[1]]; dup {
				t.Fatalf("duplicate seed marker for %s (lines %d and %d)", m[1], prev, line)
			}
			seeds[m[1]] = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return seeds
}
