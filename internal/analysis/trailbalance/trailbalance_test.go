package trailbalance_test

import (
	"testing"

	"netembed/internal/analysis/analysistest"
	"netembed/internal/analysis/trailbalance"
)

func TestTrailbalance(t *testing.T) {
	analysistest.Run(t, "testdata/trail", trailbalance.New())
}
