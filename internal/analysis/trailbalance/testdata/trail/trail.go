// Package trail seeds trailbalance violations: pushes whose saved words
// can never reach a RestoreSpan unwind.
package trail

// Bitset mimics sets.Bitset's trail primitives.
type Bitset struct{ words []uint64 }

func (b *Bitset) SaveSpan(dst []uint64, w0, n int) []uint64 {
	return append(dst, b.words[w0:w0+n]...)
}

func (b *Bitset) IntersectSave(arena []uint64, o *Bitset) ([]uint64, bool) {
	arena = b.SaveSpan(arena, 0, len(b.words))
	return arena, true
}

func (b *Bitset) RestoreSpan(src []uint64, w0 int) {
	copy(b.words[w0:], src)
}

type searcher struct {
	dom   []Bitset
	arena []uint64
	trail []int
}

// good is the fc.go idiom: the arena is a field, the unwind pops it.
func (s *searcher) good(q int, row *Bitset) {
	off := len(s.arena)
	var ok bool
	s.arena, ok = s.dom[q].IntersectSave(s.arena, row)
	if ok {
		s.trail = append(s.trail, off)
	}
}

func (s *searcher) undo() {
	for i := len(s.trail) - 1; i >= 0; i-- {
		off := s.trail[i]
		s.dom[0].RestoreSpan(s.arena[off:], 0)
	}
	s.trail = s.trail[:0]
}

// discarded drops the pushed words on the floor.
func (s *searcher) discarded(q int) {
	s.dom[q].SaveSpan(nil, 0, 1) // want `result of SaveSpan is discarded`
}

// blanked assigns the saved slice to the blank identifier.
func (s *searcher) blanked(q int, row *Bitset) {
	_, _ = s.dom[q].IntersectSave(s.arena, row) // want `saved span of IntersectSave is assigned to _`
}

// deadLocal saves into a local that is only ever blank-discarded.
func (s *searcher) deadLocal(q int) {
	saved := s.dom[q].SaveSpan(nil, 0, 1) // want `saved span of SaveSpan is never used again`
	_ = saved
}

// liveLocal records the save into an outer slice — fine.
func (s *searcher) liveLocal(q int) []uint64 {
	saved := s.dom[q].SaveSpan(nil, 0, 1)
	return saved
}

// allowed demonstrates the suppression syntax.
func (s *searcher) allowed(q int) {
	//netembedvet:allow trailbalance scratch probe, restored by caller
	s.dom[q].SaveSpan(nil, 0, 1)
}

// bareAllow has no reason, so the finding stays.
func (s *searcher) bareAllow(q int) {
	//netembedvet:allow trailbalance
	s.dom[q].SaveSpan(nil, 0, 1) // want `result of SaveSpan is discarded`
}
