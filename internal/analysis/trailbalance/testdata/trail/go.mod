module trailtest

go 1.23
