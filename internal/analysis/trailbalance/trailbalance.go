// Package trailbalance enforces the trail push/pop contract of the
// forward-checking machinery (core/fc.go, core/pathfc.go): words saved
// onto a trail arena with Bitset.SaveSpan or Bitset.IntersectSave must
// be able to reach a matching RestoreSpan, or the backtracking unwind
// silently corrupts the domains it is supposed to rewind.
//
// The checker is flow-insensitive but catches the shipped bug class
// (an undo path that was never wired) with three rules:
//
//  1. a SaveSpan/IntersectSave result that is discarded (expression
//     statement, or the saved slice assigned to the blank identifier)
//     can never be restored — reported always;
//  2. a SaveSpan/IntersectSave result assigned only to a local variable
//     that is never used again cannot reach an unwind — reported;
//  3. a package that pushes spans but contains no RestoreSpan call at
//     all has no unwind to reach — every push site is reported.
//
// Storing the saved words in a struct field, an outer variable, or
// returning them counts as recording them for a later unwind; pairing
// pushes with pops across functions is the unwind's job, not this
// checker's.
package trailbalance

import (
	"go/ast"
	"go/token"

	"netembed/internal/analysis"
)

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "trailbalance",
		Doc:  "SaveSpan/IntersectSave trail pushes must be reachable by a RestoreSpan unwind",
		Run:  run,
	}
}

func isSaveCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "SaveSpan", "IntersectSave":
		return sel.Sel.Name, true
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	type saveSite struct {
		pos  token.Pos
		name string
	}
	var saves []saveSite
	restores := 0

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "RestoreSpan" {
				restores++
			}
			if name, ok := isSaveCall(call); ok {
				saves = append(saves, saveSite{pos: call.Pos(), name: name})
			}
			return true
		})

		// Rule 1+2: inspect each function body for discarded or dead saves.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}

	// Rule 3: pushes with no unwind anywhere in the package.
	if restores == 0 {
		for _, s := range saves {
			pass.Reportf(s.pos, "%s pushes trail words, but the package never calls RestoreSpan: the trail can never unwind", s.name)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// locals maps a local variable object (defined from a save call) to
	// its definition position; a later use removes it.
	type deadSave struct {
		pos  token.Pos
		name string
	}
	pending := make(map[*ast.Object]deadSave)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, ok := isSaveCall(call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded: the saved words can never be restored", name)
				}
			}
		case *ast.AssignStmt:
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, ok := isSaveCall(call)
				if !ok {
					continue
				}
				// The saved slice is the call's first result. With
				// multiple RHS values, position i matches LHS i; a
				// single multi-value call maps result 0 to LHS 0.
				var lhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					lhs = st.Lhs[i]
				} else if len(st.Lhs) > 0 {
					lhs = st.Lhs[0]
				}
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent {
					continue // field / index target: recorded for a later unwind
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "saved span of %s is assigned to _: the saved words can never be restored", name)
					continue
				}
				if st.Tok == token.DEFINE && id.Obj != nil {
					pending[id.Obj] = deadSave{pos: call.Pos(), name: name}
				}
			}
			// `_ = saved` discards the value: pruning the traversal here
			// keeps that read from counting as a real use.
			if allBlank {
				return false
			}
		case *ast.Ident:
			if st.Obj != nil {
				if ds, ok := pending[st.Obj]; ok {
					// Any use after the defining statement keeps it alive.
					if st.Pos() > ds.pos {
						delete(pending, st.Obj)
					}
				}
			}
		}
		return true
	})

	for _, ds := range pending {
		pass.Reportf(ds.pos, "saved span of %s is never used again: it cannot reach a RestoreSpan unwind", ds.name)
	}
}
