// Package analysis is a minimal, dependency-free re-creation of the
// golang.org/x/tools/go/analysis API surface netembedvet needs. The
// container this repo builds in has no module proxy access, so the
// x/tools framework cannot be vendored; this package keeps the same
// shape (Analyzer, Pass, Diagnostic, Reportf) so the analyzers port to
// the real framework mechanically if the dependency ever becomes
// available.
//
// Differences from x/tools, by design:
//   - no Facts: cross-package state is carried by stateful analyzer
//     instances, which the driver runs over packages in dependency
//     order (see internal/analysis/driver);
//   - no SSA/inspector helpers: analyzers walk the AST directly;
//   - suppression (//netembedvet:allow) is applied centrally by the
//     driver, not per analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Name doubles as the
// suppression key in //netembedvet:allow comments.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow annotations.
	Name string
	// Doc is the one-paragraph contract description shown by -help.
	Doc string
	// Run checks one package. Diagnostics go through pass.Report; the
	// returned error aborts the whole run (reserve it for internal
	// failures, not findings).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
