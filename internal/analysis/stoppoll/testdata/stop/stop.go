// Package stop seeds stoppoll violations: search-shaped functions that
// hold a stop capability and never poll or delegate it.
package stop

// stopClock mimics core's shared stop gate.
type stopClock struct{ timedOut bool }

func (c *stopClock) checkDeadline() bool { return c.timedOut }

// Options mimics core.Options.
type Options struct {
	MaxSolutions int
	Stop         func() bool
}

type searcher struct {
	stopClock
	assign []int
}

// goodRecursive polls the embedded clock on every expansion.
func (s *searcher) goodRecursive(d int) {
	if d >= len(s.assign) {
		return
	}
	for r := range s.assign {
		if s.checkDeadline() {
			return
		}
		s.assign[d] = r
		s.goodRecursive(d + 1)
	}
}

// badRecursive descends forever without consulting the clock it embeds.
func (s *searcher) badRecursive(d int) {
	if d >= len(s.assign) {
		return
	}
	for r := range s.assign {
		s.assign[d] = r
		s.badRecursive(d + 1) // want `badRecursive holds a stop capability and is search-shaped`
	}
}

// badDriver spins an unbounded driver loop without polling Options.Stop.
func badDriver(opt Options, work chan int) int {
	n := 0
	for { // want `badDriver holds a stop capability and is search-shaped`
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
		if opt.MaxSolutions > 0 && n >= opt.MaxSolutions {
			return n
		}
	}
}

// goodDriver polls the hook each round.
func goodDriver(opt Options, work chan int) int {
	n := 0
	for {
		if opt.Stop != nil && opt.Stop() {
			return n
		}
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
	}
}

// goodDelegate hands the options (and thus the hook) to the searcher.
func goodDelegate(opt Options, s *searcher) {
	for {
		if run(opt, s) {
			return
		}
	}
}

func run(opt Options, s *searcher) bool { return opt.MaxSolutions == 0 }

// badClosure is the PathsWithin bug shape: a recursive DFS closure that
// ignores the stop parameter the enclosing function received.
func badClosure(adj [][]int, stop func() bool) int {
	visited := 0
	var dfs func(v int)
	dfs = func(v int) {
		visited++
		for _, w := range adj[v] {
			dfs(w) // want `badClosure holds a stop capability and is search-shaped`
		}
	}
	dfs(0)
	return visited
}

// goodClosure polls the hook inside the DFS.
func goodClosure(adj [][]int, stop func() bool) int {
	visited := 0
	var dfs func(v int)
	dfs = func(v int) {
		if stop != nil && stop() {
			return
		}
		visited++
		for _, w := range adj[v] {
			dfs(w)
		}
	}
	dfs(0)
	return visited
}

// boundedScan has the capability but only bounded loops: out of scope.
func boundedScan(opt Options, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total + opt.MaxSolutions
}

// allowedDriver demonstrates the doc-comment suppression.
//
//netembedvet:allow stoppoll drains a closed channel, bounded by queue depth
func allowedDriver(opt Options, work chan int) int {
	n := 0
	for {
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
	}
}
