module stoptest

go 1.23
