package stoppoll_test

import (
	"testing"

	"netembed/internal/analysis/analysistest"
	"netembed/internal/analysis/stoppoll"
)

func TestStoppoll(t *testing.T) {
	analysistest.Run(t, "testdata/stop", stoppoll.New())
}
