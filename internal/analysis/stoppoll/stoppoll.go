// Package stoppoll enforces the cooperative-cancellation contract:
// search-shaped code that holds a stop capability must actually poll it.
// Two shipped bugs motivate the check — PR 2 found searchers whose
// descent loops never consulted Options.Stop, and PR 5 found a witness
// DFS (graph.PathsWithin) that enumerated simple paths with no stop
// hook at all, making cancellation latency unbounded on dense hosts.
//
// A function has a *stop capability* when its receiver or a parameter
// carries one of:
//   - a type whose method set includes checkDeadline (everything that
//     embeds core's stopClock);
//   - a struct with a `Stop func() bool` field (core.Options,
//     core.PathOptions, service.Request, ...);
//   - a `func() bool` parameter whose name mentions "stop" (the
//     graph.PathsWithinStop idiom).
//
// A capability-bearing function is *search-shaped* when it recurses
// (directly, or through a self-calling local closure) or contains an
// unconditional `for { ... }` loop — the two shapes whose running time
// is not bounded by their inputs' size. Such a function must either
// poll the capability (call checkDeadline, the stop parameter, or a
// .Stop field) or delegate it onward (pass the capability value, or
// call a method on a checkDeadline-bearing value, which re-enters the
// contract one level down). Bounded scans — plain loops over nodes,
// edges or domains — are deliberately out of scope: they finish on
// their own, and flagging them would drown the signal.
package stoppoll

import (
	"go/ast"
	"go/types"
	"strings"

	"netembed/internal/analysis"
)

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "stoppoll",
		Doc:  "recursive/unbounded search code holding a stop capability must poll or delegate it",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// hasCheckDeadline reports whether t's method set (through pointers,
// including unexported methods) contains checkDeadline.
func hasCheckDeadline(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "checkDeadline")
	if _, ok := obj.(*types.Func); ok {
		return true
	}
	return false
}

// isStopFuncType reports whether t is func() bool.
func isStopFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// hasStopField reports whether t (through pointers) is a struct with a
// `Stop func() bool` field.
func hasStopField(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Stop" && isStopFuncType(f.Type()) {
			return true
		}
	}
	return false
}

// isCapabilityType reports whether a value of type t carries a stop
// capability that a callee could poll.
func isCapabilityType(pass *analysis.Pass, t types.Type) bool {
	return t != nil && (hasCheckDeadline(pass, t) || hasStopField(t) || isStopFuncType(t))
}

// capability describes what the function has to poll.
type capability struct {
	stopParams map[types.Object]bool // func() bool params named *stop*
	hasClock   bool                  // receiver/param with checkDeadline in its method set
	hasOptions bool                  // receiver/param with a Stop func() bool field
}

func (c *capability) any() bool {
	return c.hasClock || c.hasOptions || len(c.stopParams) > 0
}

func capabilityOf(pass *analysis.Pass, fd *ast.FuncDecl) *capability {
	cap := &capability{stopParams: make(map[types.Object]bool)}
	scan := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.Types[field.Type].Type
			if t == nil {
				continue
			}
			if hasCheckDeadline(pass, t) {
				cap.hasClock = true
			}
			if hasStopField(t) {
				cap.hasOptions = true
			}
			if isStopFuncType(t) {
				for _, name := range field.Names {
					if strings.Contains(strings.ToLower(name.Name), "stop") ||
						name.Name == "checkDeadline" {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							cap.stopParams[obj] = true
						}
					}
				}
			}
		}
	}
	scan(fd.Recv)
	scan(fd.Type.Params)
	return cap
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	cap := capabilityOf(pass, fd)
	if !cap.any() {
		return
	}

	fnObj := pass.TypesInfo.Defs[fd.Name]

	// closures maps a local function-typed variable to the FuncLits
	// assigned to it, for recursive-closure detection.
	closureBodies := make(map[types.Object][]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					var obj types.Object
					if st.Tok.String() == ":=" {
						obj = pass.TypesInfo.Defs[id]
					} else {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						closureBodies[obj] = append(closureBodies[obj], lit)
					}
				}
			}
		}
		return true
	})

	var (
		searchShaped ast.Node // first evidence: recursion site or `for {`
		polls        bool
		delegates    bool
	)

	calleeObj := func(call *ast.CallExpr) types.Object {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[fun]; ok {
				return sel.Obj()
			}
			return pass.TypesInfo.Uses[fun.Sel]
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			if st.Cond == nil && searchShaped == nil {
				searchShaped = st
			}
		case *ast.CallExpr:
			obj := calleeObj(st)

			// Recursion: the function calls itself, or calls a local
			// closure that calls itself.
			if fnObj != nil && obj == fnObj && searchShaped == nil {
				searchShaped = st
			}
			if lits, ok := closureBodies[obj]; ok && searchShaped == nil {
				for _, lit := range lits {
					self := false
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						if c, ok := m.(*ast.CallExpr); ok {
							if id, ok := c.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
								self = true
							}
						}
						return !self
					})
					if self {
						searchShaped = st
						break
					}
				}
			}

			// Polls.
			switch fun := st.Fun.(type) {
			case *ast.Ident:
				if cap.stopParams[pass.TypesInfo.Uses[fun]] || fun.Name == "checkDeadline" {
					polls = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "checkDeadline" || fun.Sel.Name == "Stop" {
					polls = true
				}
			}

			// Delegation: the capability travels into the call. A call to
			// the function itself is recursion, not delegation — otherwise
			// every recursive method on a clock-bearing receiver would
			// vacuously "delegate" to itself.
			if obj != fnObj {
				for _, arg := range st.Args {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && isCapabilityType(pass, tv.Type) {
						delegates = true
					}
				}
				if fun, ok := st.Fun.(*ast.SelectorExpr); ok {
					if tv, ok := pass.TypesInfo.Types[fun.X]; ok && hasCheckDeadline(pass, tv.Type) {
						delegates = true
					}
				}
			}
		}
		return true
	})

	if searchShaped != nil && !polls && !delegates {
		pass.Reportf(searchShaped.Pos(),
			"%s holds a stop capability and is search-shaped (recursive or `for {`), but never polls checkDeadline/Stop or passes the capability on",
			fd.Name.Name)
	}
}
