package graph

import (
	"testing"
)

func deltaHost() *Graph {
	g := NewUndirected()
	a := g.AddNode("a", Attrs{}.SetNum("cpu", 4).SetNum("slots", 2))
	b := g.AddNode("b", Attrs{}.SetNum("cpu", 2))
	c := g.AddNode("c", Attrs{}.SetStr("os", "linux"))
	g.MustAddEdge(a, b, Attrs{}.SetNum("delay", 10))
	g.MustAddEdge(b, c, Attrs{}.SetNum("delay", 20))
	return g
}

func TestApplyDeltaEmpty(t *testing.T) {
	g := deltaHost()
	next, err := g.ApplyDelta(&Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if next != g {
		t.Error("empty delta should return the receiver unchanged")
	}
	if next, err = g.ApplyDelta(nil); err != nil || next != g {
		t.Error("nil delta should return the receiver unchanged")
	}
}

func TestApplyDeltaAttrsOnlyIsCopyOnWrite(t *testing.T) {
	g := deltaHost()
	next, err := g.ApplyDelta(&Delta{
		SetNodeAttrs: []NodeAttrUpdate{
			{Node: "a", Set: Attrs{}.SetNum("cpu", 8), Unset: []string{"slots"}},
		},
		SetEdgeAttrs: []EdgeAttrUpdate{
			{Source: "c", Target: "b", Set: Attrs{}.SetNum("delay", 25)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The structure is shared, not copied.
	if &next.out[0] != &g.out[0] {
		t.Error("attribute-only delta should share adjacency")
	}
	if len(next.index) != len(g.index) || len(next.names) != len(g.names) {
		t.Error("attribute-only delta should share the edge/name indexes")
	}
	// New values visible on the new snapshot.
	if v, _ := next.nodes[0].Attrs.Float("cpu"); v != 8 {
		t.Errorf("cpu = %v, want 8", v)
	}
	if next.nodes[0].Attrs.Has("slots") {
		t.Error("slots should have been unset")
	}
	id, _ := next.EdgeBetween(1, 2)
	if v, _ := next.Edge(id).Attrs.Float("delay"); v != 25 {
		t.Errorf("edge delay = %v, want 25", v)
	}
	// Old snapshot untouched.
	if v, _ := g.nodes[0].Attrs.Float("cpu"); v != 4 {
		t.Errorf("old snapshot cpu = %v, want 4", v)
	}
	if !g.nodes[0].Attrs.Has("slots") {
		t.Error("old snapshot lost its slots attribute")
	}
	oldID, _ := g.EdgeBetween(1, 2)
	if v, _ := g.Edge(oldID).Attrs.Float("delay"); v != 20 {
		t.Errorf("old snapshot edge delay = %v, want 20", v)
	}
	// Untouched attribute bags are shared by identity.
	if &next.nodes[1].Attrs != &next.nodes[1].Attrs {
		t.Fatal("unreachable")
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaStructural(t *testing.T) {
	g := deltaHost()
	next, err := g.ApplyDelta(&Delta{
		RemoveEdges: []EdgeRef{{Source: "b", Target: "a"}}, // order-insensitive
		RemoveNodes: []string{"c"},                         // takes edge b-c along
		AddNodes:    []NodeSpec{{Name: "d", Attrs: Attrs{}.SetNum("cpu", 16)}},
		AddEdges:    []EdgeSpec{{Source: "a", Target: "d", Attrs: Attrs{}.SetNum("delay", 5)}},
		SetNodeAttrs: []NodeAttrUpdate{
			{Node: "d", Set: Attrs{}.SetNum("slots", 3)}, // may reference added nodes
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.NumNodes() != 3 || next.NumEdges() != 1 {
		t.Fatalf("got %d nodes / %d edges, want 3 / 1", next.NumNodes(), next.NumEdges())
	}
	if _, ok := next.NodeByName("c"); ok {
		t.Error("removed node still resolvable")
	}
	d, ok := next.NodeByName("d")
	if !ok {
		t.Fatal("added node missing")
	}
	if v, _ := next.Node(d).Attrs.Float("slots"); v != 3 {
		t.Errorf("added node slots = %v, want 3", v)
	}
	a, _ := next.NodeByName("a")
	if !next.HasEdge(a, d) {
		t.Error("added edge missing")
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original is fully intact.
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Error("structural delta modified the original graph")
	}
}

func TestApplyDeltaNodeReplacement(t *testing.T) {
	g := deltaHost()
	next, err := g.ApplyDelta(&Delta{
		RemoveNodes: []string{"b"},
		AddNodes:    []NodeSpec{{Name: "b", Attrs: Attrs{}.SetNum("cpu", 99)}},
		AddEdges:    []EdgeSpec{{Source: "a", Target: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := next.NodeByName("b")
	if v, _ := next.Node(b).Attrs.Float("cpu"); v != 99 {
		t.Errorf("replaced node cpu = %v, want 99", v)
	}
	if next.NumEdges() != 1 {
		t.Errorf("replacement should drop the old incident edges, got %d edges", next.NumEdges())
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g := deltaHost()
	cases := []struct {
		name  string
		delta Delta
	}{
		{"unknown node attrs", Delta{SetNodeAttrs: []NodeAttrUpdate{{Node: "zz"}}}},
		{"unknown edge attrs", Delta{SetEdgeAttrs: []EdgeAttrUpdate{{Source: "a", Target: "c"}}}},
		{"remove unknown node", Delta{RemoveNodes: []string{"zz"}}},
		{"remove missing edge", Delta{RemoveEdges: []EdgeRef{{Source: "a", Target: "c"}}}},
		{"add duplicate node", Delta{AddNodes: []NodeSpec{{Name: "a"}}}},
		{"add duplicate edge", Delta{AddEdges: []EdgeSpec{{Source: "a", Target: "b"}}}},
		{"add self-loop", Delta{AddEdges: []EdgeSpec{{Source: "a", Target: "a"}}}},
		{"add unnamed node", Delta{AddNodes: []NodeSpec{{}}}},
	}
	for _, c := range cases {
		if _, err := g.ApplyDelta(&c.delta); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Errors leave the graph untouched.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Error("failed delta modified the graph")
	}
}

func TestDeltaClassification(t *testing.T) {
	var nilDelta *Delta
	if !nilDelta.Empty() || nilDelta.Structural() {
		t.Error("nil delta should be empty and non-structural")
	}
	attrs := &Delta{SetNodeAttrs: []NodeAttrUpdate{{Node: "a"}}}
	if attrs.Empty() || attrs.Structural() {
		t.Error("attr delta misclassified")
	}
	structural := &Delta{AddNodes: []NodeSpec{{Name: "x"}}}
	if structural.Empty() || !structural.Structural() {
		t.Error("structural delta misclassified")
	}
	s, a := structural.Counts()
	if s != 1 || a != 0 {
		t.Errorf("Counts = (%d, %d), want (1, 0)", s, a)
	}
}
