// Package graph implements the attributed-graph substrate underlying
// NETEMBED. Both the hosting network and query networks are Graph values:
// nodes and edges carry typed attribute bags (see Value), the structure is
// index-addressed for tight search loops, and adjacency plus an edge index
// give O(degree) neighbor scans and O(1) edge lookup.
//
// Graphs may be directed or undirected. Undirected edges are stored once
// and appear in the adjacency list of both endpoints. Self-loops and
// duplicate edges are rejected: the embedding problem is defined over
// simple graphs, and the filter construction in internal/core relies on
// at most one edge per (ordered) node pair.
package graph

import (
	"errors"
	"fmt"
)

// NodeID indexes a node within a Graph. IDs are dense: the nodes of a
// graph with n nodes are exactly 0..n-1.
type NodeID = int32

// EdgeID indexes an edge within a Graph, dense like NodeID.
type EdgeID = int32

// Node is a vertex with a unique name and an attribute bag.
type Node struct {
	Name  string
	Attrs Attrs
}

// Edge connects From to To (an unordered pair when the graph is
// undirected) and carries an attribute bag.
type Edge struct {
	From, To NodeID
	Attrs    Attrs
}

// Arc is one adjacency entry: the neighbor reached and the edge used.
type Arc struct {
	To   NodeID
	Edge EdgeID
}

// Graph is a simple attributed graph. The zero value is not usable; call
// New or NewUndirected.
type Graph struct {
	directed bool
	nodes    []Node            //cow:shared
	edges    []Edge            //cow:shared
	out      [][]Arc           //cow:shared — out-adjacency (all adjacency when undirected)
	in       [][]Arc           //cow:shared — in-adjacency, directed graphs only
	index    map[uint64]EdgeID //cow:shared
	names    map[string]NodeID //cow:shared
}

// New returns an empty graph with the given orientation.
func New(directed bool) *Graph {
	return &Graph{
		directed: directed,
		index:    make(map[uint64]EdgeID),
		names:    make(map[string]NodeID),
	}
}

// NewUndirected returns an empty undirected graph.
func NewUndirected() *Graph { return New(false) }

// NewDirected returns an empty directed graph.
func NewDirected() *Graph { return New(true) }

// Directed reports the orientation of the graph.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges (undirected edges count once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node and returns its ID. An empty name is replaced by
// a generated one; duplicate names are rejected by panicking, since node
// names are the external identity used by GraphML and the service layer.
//
//netembedvet:allow cowwrite construction-phase builder: the graph has not been published as a snapshot yet, so nothing shares its storage
func (g *Graph) AddNode(name string, attrs Attrs) NodeID {
	if name == "" {
		name = fmt.Sprintf("n%d", len(g.nodes))
	}
	if _, dup := g.names[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q", name))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{Name: name, Attrs: attrs})
	g.out = append(g.out, nil)
	if g.directed {
		g.in = append(g.in, nil)
	}
	g.names[name] = id
	return id
}

// AddNodes appends n anonymous nodes and returns the ID of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.nodes))
	for i := 0; i < n; i++ {
		g.AddNode("", nil)
	}
	return first
}

// Errors reported by AddEdge.
var (
	ErrSelfLoop      = errors.New("graph: self-loops are not allowed")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	ErrNoSuchNode    = errors.New("graph: node id out of range")
)

func (g *Graph) edgeKey(u, v NodeID) uint64 {
	if !g.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// AddEdge inserts an edge from u to v and returns its ID.
//
//netembedvet:allow cowwrite construction-phase builder: the graph has not been published as a snapshot yet, so nothing shares its storage
func (g *Graph) AddEdge(u, v NodeID, attrs Attrs) (EdgeID, error) {
	if u < 0 || int(u) >= len(g.nodes) || v < 0 || int(v) >= len(g.nodes) {
		return -1, ErrNoSuchNode
	}
	if u == v {
		return -1, ErrSelfLoop
	}
	key := g.edgeKey(u, v)
	if _, dup := g.index[key]; dup {
		return -1, ErrDuplicateEdge
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{From: u, To: v, Attrs: attrs})
	g.index[key] = id
	g.out[u] = append(g.out[u], Arc{To: v, Edge: id})
	if g.directed {
		g.in[v] = append(g.in[v], Arc{To: u, Edge: id})
	} else {
		g.out[v] = append(g.out[v], Arc{To: u, Edge: id})
	}
	return id, nil
}

// MustAddEdge is AddEdge that panics on error, for generators and tests
// whose inputs are valid by construction.
func (g *Graph) MustAddEdge(u, v NodeID, attrs Attrs) EdgeID {
	id, err := g.AddEdge(u, v, attrs)
	if err != nil {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): %v", u, v, err))
	}
	return id
}

// Node returns a pointer to the node record for id.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns a pointer to the edge record for id.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// NodeByName resolves a node name to its ID.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.names[name]
	return id, ok
}

// Arcs returns the out-adjacency of u (full adjacency when undirected).
// The returned slice must not be modified.
func (g *Graph) Arcs(u NodeID) []Arc { return g.out[u] }

// InArcs returns the in-adjacency of u in a directed graph. For an
// undirected graph it equals Arcs.
func (g *Graph) InArcs(u NodeID) []Arc {
	if !g.directed {
		return g.out[u]
	}
	return g.in[u]
}

// Degree returns the degree of u: out-degree plus in-degree when directed,
// plain degree when undirected.
func (g *Graph) Degree(u NodeID) int {
	if !g.directed {
		return len(g.out[u])
	}
	return len(g.out[u]) + len(g.in[u])
}

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// EdgeBetween returns the edge from u to v. For undirected graphs the
// order of u and v does not matter.
func (g *Graph) EdgeBetween(u, v NodeID) (EdgeID, bool) {
	id, ok := g.index[g.edgeKey(u, v)]
	return id, ok
}

// HasEdge reports whether an edge from u to v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.index[g.edgeKey(u, v)]
	return ok
}

// Clone returns a deep copy of the graph (attribute bags included).
func (g *Graph) Clone() *Graph {
	c := New(g.directed)
	for _, n := range g.nodes {
		c.AddNode(n.Name, n.Attrs.Clone())
	}
	for _, e := range g.edges {
		c.MustAddEdge(e.From, e.To, e.Attrs.Clone())
	}
	return c
}

// InducedSubgraph returns the subgraph induced by ids (every edge of g
// with both endpoints in ids), plus the mapping from new node IDs back to
// the originals. Node names and attribute bags are shared-by-copy.
// Duplicate IDs in ids are rejected.
func (g *Graph) InducedSubgraph(ids []NodeID) (*Graph, []NodeID, error) {
	sub := New(g.directed)
	back := make([]NodeID, 0, len(ids))
	fwd := make(map[NodeID]NodeID, len(ids))
	for _, id := range ids {
		if id < 0 || int(id) >= len(g.nodes) {
			return nil, nil, ErrNoSuchNode
		}
		if _, dup := fwd[id]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in subgraph selection", id)
		}
		n := g.nodes[id]
		fwd[id] = sub.AddNode(n.Name, n.Attrs.Clone())
		back = append(back, id)
	}
	for _, e := range g.edges {
		u, okU := fwd[e.From]
		v, okV := fwd[e.To]
		if okU && okV {
			sub.MustAddEdge(u, v, e.Attrs.Clone())
		}
	}
	return sub, back, nil
}

// Density returns |E| / |E_max| for the graph's orientation.
func (g *Graph) Density() float64 {
	n := float64(len(g.nodes))
	if n < 2 {
		return 0
	}
	max := n * (n - 1)
	if !g.directed {
		max /= 2
	}
	return float64(len(g.edges)) / max
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	total := 0
	for id := range g.nodes {
		total += g.Degree(NodeID(id))
	}
	return float64(total) / float64(len(g.nodes))
}

// DegreeHistogram returns counts of nodes per degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for id := range g.nodes {
		h[g.Degree(NodeID(id))]++
	}
	return h
}

// Validate checks internal invariants; it is used by tests and after
// decoding untrusted GraphML.
func (g *Graph) Validate() error {
	if len(g.out) != len(g.nodes) {
		return fmt.Errorf("graph: adjacency size %d != node count %d", len(g.out), len(g.nodes))
	}
	if g.directed && len(g.in) != len(g.nodes) {
		return fmt.Errorf("graph: in-adjacency size %d != node count %d", len(g.in), len(g.nodes))
	}
	if len(g.index) != len(g.edges) {
		return fmt.Errorf("graph: edge index size %d != edge count %d", len(g.index), len(g.edges))
	}
	arcs := 0
	for _, a := range g.out {
		arcs += len(a)
	}
	want := len(g.edges)
	if !g.directed {
		want *= 2
	}
	if arcs != want {
		return fmt.Errorf("graph: adjacency arc count %d != expected %d", arcs, want)
	}
	for i, e := range g.edges {
		if e.From == e.To {
			return fmt.Errorf("graph: edge %d is a self-loop", i)
		}
		id, ok := g.index[g.edgeKey(e.From, e.To)]
		if !ok || id != EdgeID(i) {
			return fmt.Errorf("graph: edge %d missing from index", i)
		}
	}
	for name, id := range g.names {
		if int(id) >= len(g.nodes) || g.nodes[id].Name != name {
			return fmt.Errorf("graph: name index entry %q -> %d is stale", name, id)
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, %d nodes, %d edges}", kind, len(g.nodes), len(g.edges))
}
