package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotOptions controls WriteDot rendering.
type DotOptions struct {
	// Name is the graph name in the DOT header (default "G").
	Name string
	// HighlightNodes/HighlightEdges are drawn bold red — the service uses
	// this to overlay an embedding on the hosting network.
	HighlightNodes map[NodeID]bool
	HighlightEdges map[EdgeID]bool
	// NodeLabelAttrs lists attributes appended to node labels.
	NodeLabelAttrs []string
	// EdgeLabelAttrs lists attributes appended to edge labels.
	EdgeLabelAttrs []string
	// MaxEdges truncates huge graphs (0 = no limit); a comment notes the
	// omission so a truncated render is never mistaken for the full graph.
	MaxEdges int
}

// WriteDot renders g in Graphviz DOT format. Deterministic output: nodes
// and edges appear in ID order.
func WriteDot(w io.Writer, g *Graph, opt DotOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	kind, arrow := "graph", " -- "
	if g.Directed() {
		kind, arrow = "digraph", " -> "
	}
	if _, err := fmt.Fprintf(w, "%s %q {\n", kind, name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  node [shape=ellipse fontsize=10];\n")

	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		n := g.Node(id)
		label := n.Name
		for _, attr := range opt.NodeLabelAttrs {
			if v := n.Attrs.Get(attr); !v.IsMissing() {
				label += fmt.Sprintf("\\n%s=%s", attr, v)
			}
		}
		style := ""
		if opt.HighlightNodes[id] {
			style = " color=red penwidth=2"
		}
		fmt.Fprintf(w, "  %q [label=%q%s];\n", n.Name, label, style)
	}

	limit := g.NumEdges()
	if opt.MaxEdges > 0 && opt.MaxEdges < limit {
		limit = opt.MaxEdges
	}
	for i := 0; i < limit; i++ {
		e := g.Edge(EdgeID(i))
		var labels []string
		for _, attr := range opt.EdgeLabelAttrs {
			if v := e.Attrs.Get(attr); !v.IsMissing() {
				labels = append(labels, fmt.Sprintf("%s=%s", attr, v))
			}
		}
		extra := ""
		if len(labels) > 0 {
			extra = fmt.Sprintf(" [label=%q]", strings.Join(labels, "\\n"))
		}
		if opt.HighlightEdges[EdgeID(i)] {
			if extra == "" {
				extra = " [color=red penwidth=2]"
			} else {
				extra = strings.TrimSuffix(extra, "]") + " color=red penwidth=2]"
			}
		}
		fmt.Fprintf(w, "  %q%s%q%s;\n", g.Node(e.From).Name, arrow, g.Node(e.To).Name, extra)
	}
	if limit < g.NumEdges() {
		fmt.Fprintf(w, "  // %d of %d edges omitted (MaxEdges)\n", g.NumEdges()-limit, g.NumEdges())
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// EmbeddingDot renders the hosting network with an embedding highlighted:
// mapped hosting nodes and the hosting edges carrying query links are
// bold. mapping[q] = hosting node for query node q.
func EmbeddingDot(w io.Writer, query, host *Graph, mapping []NodeID, opt DotOptions) error {
	if len(mapping) != query.NumNodes() {
		return fmt.Errorf("graph: mapping has %d entries, query has %d nodes", len(mapping), query.NumNodes())
	}
	if opt.HighlightNodes == nil {
		opt.HighlightNodes = map[NodeID]bool{}
	}
	if opt.HighlightEdges == nil {
		opt.HighlightEdges = map[EdgeID]bool{}
	}
	for _, r := range mapping {
		opt.HighlightNodes[r] = true
	}
	missing := 0
	for i := 0; i < query.NumEdges(); i++ {
		qe := query.Edge(EdgeID(i))
		if re, ok := host.EdgeBetween(mapping[qe.From], mapping[qe.To]); ok {
			opt.HighlightEdges[re] = true
		} else {
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("graph: %d query edges have no hosting edge under the mapping", missing)
	}
	return WriteDot(w, host, opt)
}

// SortedAttrNames returns the attribute names present anywhere on the
// graph's nodes (for label selection in tools), sorted.
func SortedAttrNames(g *Graph) []string {
	seen := map[string]bool{}
	for i := 0; i < g.NumNodes(); i++ {
		for name := range g.Node(NodeID(i)).Attrs {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
