package graph

import (
	"container/heap"
	"math"
)

// BFSFrom visits nodes reachable from start in breadth-first order,
// calling visit with each node and its hop distance from start. Returning
// false from visit stops the traversal.
func (g *Graph) BFSFrom(start NodeID, visit func(n NodeID, depth int) bool) {
	seen := make([]bool, len(g.nodes))
	type item struct {
		n NodeID
		d int
	}
	queue := []item{{start, 0}}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.n, cur.d) {
			return
		}
		for _, a := range g.out[cur.n] {
			if !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, item{a.To, cur.d + 1})
			}
		}
	}
}

// DFSFrom visits nodes reachable from start in depth-first preorder.
// Returning false from visit stops the traversal.
func (g *Graph) DFSFrom(start NodeID, visit func(n NodeID) bool) {
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !visit(n) {
			return
		}
		arcs := g.out[n]
		for i := len(arcs) - 1; i >= 0; i-- {
			if to := arcs[i].To; !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
}

// ConnectedComponents returns the weakly connected components of the
// graph, each as a slice of node IDs in discovery order.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make([]bool, len(g.nodes))
	var comps [][]NodeID
	for start := range g.nodes {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, a := range g.out[n] {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
			if g.directed {
				for _, a := range g.in[n] {
					if !seen[a.To] {
						seen[a.To] = true
						stack = append(stack, a.To)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph is (weakly) connected. The empty
// graph counts as connected.
func (g *Graph) IsConnected() bool {
	return len(g.nodes) == 0 || len(g.ConnectedComponents()) == 1
}

// Path is a walk through the graph: a node sequence plus the edges joining
// consecutive nodes, with the accumulated cost used to find it.
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
	Cost  float64
}

// pqItem/pq implement the Dijkstra priority queue.
type pqItem struct {
	n    NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst using the given edge cost
// function (which must be non-negative) and returns the minimum-cost path,
// or ok=false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, cost func(EdgeID) float64) (Path, bool) {
	n := len(g.nodes)
	dist := make([]float64, n)
	prevN := make([]NodeID, n)
	prevE := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevN[i] = -1
		prevE[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.n] {
			continue
		}
		done[it.n] = true
		if it.n == dst {
			break
		}
		for _, a := range g.out[it.n] {
			if done[a.To] {
				continue
			}
			c := cost(a.Edge)
			if c < 0 {
				c = 0
			}
			if nd := dist[it.n] + c; nd < dist[a.To] {
				dist[a.To] = nd
				prevN[a.To] = it.n
				prevE[a.To] = a.Edge
				heap.Push(q, pqItem{a.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	var p Path
	p.Cost = dist[dst]
	for at := dst; at != -1; at = prevN[at] {
		p.Nodes = append(p.Nodes, at)
		if prevE[at] >= 0 {
			p.Edges = append(p.Edges, prevE[at])
		}
	}
	reverseNodes(p.Nodes)
	reverseEdges(p.Edges)
	return p, true
}

// Distances runs Dijkstra from src over the whole graph and returns the
// per-node minimum cost, +Inf for unreachable nodes. cost must be
// non-negative; returning +Inf marks an edge unusable. ShortestPath is
// the single-target variant that also materializes the path.
func (g *Graph) Distances(src NodeID, cost func(EdgeID) float64) []float64 {
	n := len(g.nodes)
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.n] {
			continue
		}
		done[it.n] = true
		for _, a := range g.out[it.n] {
			if done[a.To] {
				continue
			}
			c := cost(a.Edge)
			if c < 0 {
				c = 0
			}
			if nd := it.dist + c; nd < dist[a.To] {
				dist[a.To] = nd
				heap.Push(q, pqItem{a.To, nd})
			}
		}
	}
	return dist
}

// PathsWithin enumerates all simple paths from src to dst with at most
// maxHops edges, invoking yield for each. Returning false from yield stops
// the enumeration. This supports the link-to-path (many-to-one) embedding
// extension, where hop counts are small. A maxHops <= 0 admits only the
// trivial zero-edge path (src == dst); in particular a negative bound
// never enumerates unboundedly.
func (g *Graph) PathsWithin(src, dst NodeID, maxHops int, yield func(Path) bool) {
	g.PathsWithinStop(src, dst, maxHops, nil, yield)
}

// PathsWithinStop is PathsWithin with a cooperative cancellation hook:
// stop, when non-nil, is polled at every enumeration step, and returning
// true abandons the whole enumeration immediately. Path enumerations are
// exponential in maxHops on dense graphs, so a caller holding a deadline
// or a cancellation flag must be able to cut the inner DFS short — not
// just refrain from starting the next one.
func (g *Graph) PathsWithinStop(src, dst NodeID, maxHops int, stop func() bool, yield func(Path) bool) {
	onPath := make([]bool, len(g.nodes))
	var nodes []NodeID
	var edges []EdgeID
	var rec func(at NodeID) bool
	rec = func(at NodeID) bool {
		if stop != nil && stop() {
			return false
		}
		nodes = append(nodes, at)
		onPath[at] = true
		defer func() {
			nodes = nodes[:len(nodes)-1]
			onPath[at] = false
		}()
		if at == dst {
			p := Path{
				Nodes: append([]NodeID(nil), nodes...),
				Edges: append([]EdgeID(nil), edges...),
			}
			return yield(p)
		}
		// >= (not ==) so a negative bound is an empty bound rather than an
		// unbounded one: the guard must fire on the first comparison.
		if len(edges) >= maxHops {
			return true
		}
		for _, a := range g.out[at] {
			if onPath[a.To] {
				continue
			}
			edges = append(edges, a.Edge)
			ok := rec(a.To)
			edges = edges[:len(edges)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(src)
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []EdgeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
