package graph

import "fmt"

// CutEdge is an edge crossing a partition boundary: its endpoints landed
// in different parts, so neither part's induced subgraph contains it. Cut
// edges are addressed by node names (the identity that survives
// re-partitioning) and carry a snapshot of the edge's attribute bag plus
// the endpoint attribute bags, so a coordinator holding only the boundary
// can still evaluate edge constraints that read rEdge/rSource/rTarget —
// without keeping any copy of the full graph.
type CutEdge struct {
	Source, Target         string
	SourcePart, TargetPart string
	Attrs                  Attrs
	SourceAttrs            Attrs
	TargetAttrs            Attrs
}

// PartitionResult is the outcome of Partition: one induced subgraph per
// part label, the local→original node-ID translation per part, the node
// membership (name → part label), and the cut edges between parts.
type PartitionResult struct {
	// Parts maps each part label to the induced subgraph of its nodes.
	Parts map[string]*Graph
	// Back maps each part label to its local→original NodeID translation
	// (parallel to the part's node IDs).
	Back map[string][]NodeID
	// Owner maps every node name to its part label.
	Owner map[string]string
	// Cuts lists the edges whose endpoints landed in different parts, in
	// the original graph's edge order.
	Cuts []CutEdge
}

// Partition splits g by the classify function (node → part label) into
// per-part induced subgraphs plus the cut edges between parts. Every part
// label returned by classify must be non-empty. The subgraphs deep-copy
// their attribute bags, so the partition stays valid when g's successor
// snapshots are published.
func Partition(g *Graph, classify func(NodeID) string) (*PartitionResult, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: partition needs a graph")
	}
	groups := map[string][]NodeID{}
	labels := make([]string, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		label := classify(id)
		if label == "" {
			return nil, fmt.Errorf("graph: partition label for node %q is empty", g.Node(id).Name)
		}
		labels[i] = label
		groups[label] = append(groups[label], id)
	}
	res := &PartitionResult{
		Parts: make(map[string]*Graph, len(groups)),
		Back:  make(map[string][]NodeID, len(groups)),
		Owner: make(map[string]string, g.NumNodes()),
	}
	for label, ids := range groups {
		sub, back, err := g.InducedSubgraph(ids)
		if err != nil {
			return nil, err
		}
		res.Parts[label] = sub
		res.Back[label] = back
		for _, id := range ids {
			res.Owner[g.Node(id).Name] = label
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		lu, lv := labels[e.From], labels[e.To]
		if lu == lv {
			continue
		}
		res.Cuts = append(res.Cuts, CutEdge{
			Source:      g.Node(e.From).Name,
			Target:      g.Node(e.To).Name,
			SourcePart:  lu,
			TargetPart:  lv,
			Attrs:       e.Attrs.Clone(),
			SourceAttrs: g.Node(e.From).Attrs.Clone(),
			TargetAttrs: g.Node(e.To).Attrs.Clone(),
		})
	}
	return res, nil
}

// PartitionByAttr partitions by the string values of a node attribute;
// nodes lacking the attribute land in the part named by fallback (or, when
// fallback itself is empty, are assigned by assign — the consistent-hash
// hook the distributed tier routes unlabeled nodes with). At least one of
// fallback/assign must be usable.
func PartitionByAttr(g *Graph, attr, fallback string, assign func(name string) string) (*PartitionResult, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: partition needs a graph")
	}
	return Partition(g, func(id NodeID) string {
		if label, ok := g.Node(id).Attrs.Text(attr); ok && label != "" {
			return label
		}
		if fallback != "" {
			return fallback
		}
		if assign != nil {
			return assign(g.Node(id).Name)
		}
		return ""
	})
}
