package graph

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of an attribute Value.
type Kind uint8

// Attribute value kinds. Missing is the zero Kind: reading an attribute
// that was never set yields a Missing value, which the constraint language
// propagates (any expression over a missing value is unsatisfied, except
// where isBoundTo/has say otherwise).
const (
	Missing Kind = iota
	Number
	String
	Bool
)

func (k Kind) String() string {
	switch k {
	case Missing:
		return "missing"
	case Number:
		return "number"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a typed attribute value attached to a node or an edge. The zero
// Value is Missing.
type Value struct {
	kind Kind
	num  float64
	str  string
}

// Num returns a numeric Value.
func Num(f float64) Value { return Value{kind: Number, num: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: String, str: s} }

// BoolVal returns a boolean Value.
func BoolVal(b bool) Value {
	v := Value{kind: Bool}
	if b {
		v.num = 1
	}
	return v
}

// Kind returns the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsMissing reports whether v is the missing value.
func (v Value) IsMissing() bool { return v.kind == Missing }

// Float returns the numeric content of v and whether v is a number.
func (v Value) Float() (float64, bool) { return v.num, v.kind == Number }

// Text returns the string content of v and whether v is a string.
func (v Value) Text() (string, bool) { return v.str, v.kind == String }

// Truth returns the boolean content of v and whether v is a bool.
func (v Value) Truth() (bool, bool) { return v.num != 0, v.kind == Bool }

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case Number, Bool:
		return v.num == o.num
	case String:
		return v.str == o.str
	default: // Missing
		return true
	}
}

// String renders v for debugging and GraphML serialization.
func (v Value) String() string {
	switch v.kind {
	case Number:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case String:
		return v.str
	case Bool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	default:
		return "<missing>"
	}
}

// Attrs is a bag of named, typed attributes for a node or edge. A nil
// Attrs behaves as an empty bag for reads.
type Attrs map[string]Value

// Get returns the named attribute, or a Missing value if unset.
func (a Attrs) Get(name string) Value {
	if a == nil {
		return Value{}
	}
	return a[name]
}

// Has reports whether the named attribute is set.
func (a Attrs) Has(name string) bool {
	if a == nil {
		return false
	}
	_, ok := a[name]
	return ok
}

// Float returns the named numeric attribute and whether it is present and
// numeric.
func (a Attrs) Float(name string) (float64, bool) {
	return a.Get(name).Float()
}

// Text returns the named string attribute and whether it is present and a
// string.
func (a Attrs) Text(name string) (string, bool) {
	return a.Get(name).Text()
}

// Set stores an attribute and returns the (possibly newly allocated) map,
// so callers can write `attrs = attrs.Set(...)` on a nil map.
func (a Attrs) Set(name string, v Value) Attrs {
	if a == nil {
		a = make(Attrs, 4)
	}
	a[name] = v
	return a
}

// SetNum stores a numeric attribute.
func (a Attrs) SetNum(name string, f float64) Attrs { return a.Set(name, Num(f)) }

// SetStr stores a string attribute.
func (a Attrs) SetStr(name string, s string) Attrs { return a.Set(name, Str(s)) }

// SetBool stores a boolean attribute.
func (a Attrs) SetBool(name string, b bool) Attrs { return a.Set(name, BoolVal(b)) }

// Clone returns a deep copy of the attribute bag.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
