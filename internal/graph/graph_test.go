package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeAndLookup(t *testing.T) {
	g := NewUndirected()
	a := g.AddNode("a", Attrs{}.SetNum("cpu", 2))
	b := g.AddNode("b", nil)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.Node(a).Name != "a" || g.Node(b).Name != "b" {
		t.Error("node names wrong")
	}
	if id, ok := g.NodeByName("a"); !ok || id != a {
		t.Errorf("NodeByName(a) = %d,%v", id, ok)
	}
	if _, ok := g.NodeByName("zz"); ok {
		t.Error("NodeByName(zz) found")
	}
	if cpu, ok := g.Node(a).Attrs.Float("cpu"); !ok || cpu != 2 {
		t.Errorf("cpu attr = %v,%v", cpu, ok)
	}
}

func TestAddNodeGeneratedNamesAndDuplicates(t *testing.T) {
	g := NewUndirected()
	first := g.AddNodes(3)
	if first != 0 || g.NumNodes() != 3 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
	if g.Node(1).Name != "n1" {
		t.Errorf("generated name = %q", g.Node(1).Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	g.AddNode("n1", nil)
}

func TestAddEdgeUndirected(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(3)
	e, err := g.AddEdge(0, 1, Attrs{}.SetNum("delay", 10))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge not visible both ways")
	}
	if id, ok := g.EdgeBetween(1, 0); !ok || id != e {
		t.Errorf("EdgeBetween(1,0) = %d,%v", id, ok)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
	if _, err := g.AddEdge(1, 0, nil); err != ErrDuplicateEdge {
		t.Errorf("reversed duplicate: err = %v", err)
	}
	if _, err := g.AddEdge(0, 0, nil); err != ErrSelfLoop {
		t.Errorf("self-loop: err = %v", err)
	}
	if _, err := g.AddEdge(0, 9, nil); err != ErrNoSuchNode {
		t.Errorf("bad node: err = %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgeDirected(t *testing.T) {
	g := NewDirected()
	g.AddNodes(2)
	if _, err := g.AddEdge(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("forward edge missing")
	}
	if g.HasEdge(1, 0) {
		t.Error("reverse edge should not exist in a digraph")
	}
	if _, err := g.AddEdge(1, 0, nil); err != nil {
		t.Errorf("reverse edge rejected: %v", err)
	}
	if g.OutDegree(0) != 1 || len(g.InArcs(0)) != 1 || g.Degree(0) != 2 {
		t.Error("directed degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestClone(t *testing.T) {
	g := NewUndirected()
	g.AddNode("x", Attrs{}.SetStr("os", "linux"))
	g.AddNode("y", nil)
	g.MustAddEdge(0, 1, Attrs{}.SetNum("delay", 5))
	c := g.Clone()
	c.Node(0).Attrs.SetStr("os", "bsd")
	c.Edge(0).Attrs.SetNum("delay", 99)
	if os, _ := g.Node(0).Attrs.Text("os"); os != "linux" {
		t.Error("Clone shares node attrs")
	}
	if d, _ := g.Edge(0).Attrs.Float("delay"); d != 5 {
		t.Error("Clone shares edge attrs")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(5)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(1, 2, nil)
	g.MustAddEdge(2, 3, nil)
	g.MustAddEdge(3, 4, nil)
	g.MustAddEdge(0, 4, nil)
	sub, back, err := g.InducedSubgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %v", sub)
	}
	if back[0] != 1 || back[1] != 2 || back[2] != 3 {
		t.Errorf("back mapping = %v", back)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("induced edges wrong")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{1, 1}); err == nil {
		t.Error("duplicate selection accepted")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{99}); err == nil {
		t.Error("out-of-range selection accepted")
	}
}

func TestDensityAndDegreeStats(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(4)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(0, 2, nil)
	g.MustAddEdge(0, 3, nil)
	if got := g.Density(); got != 0.5 {
		t.Errorf("Density = %v, want 0.5", got)
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func TestBFSDFS(t *testing.T) {
	// 0-1-2 path plus isolated 3.
	g := NewUndirected()
	g.AddNodes(4)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(1, 2, nil)

	var order []NodeID
	depths := map[NodeID]int{}
	g.BFSFrom(0, func(n NodeID, d int) bool {
		order = append(order, n)
		depths[n] = d
		return true
	})
	if len(order) != 3 || order[0] != 0 {
		t.Errorf("BFS order = %v", order)
	}
	if depths[2] != 2 {
		t.Errorf("BFS depth of 2 = %d", depths[2])
	}

	var dfs []NodeID
	g.DFSFrom(0, func(n NodeID) bool {
		dfs = append(dfs, n)
		return true
	})
	if len(dfs) != 3 {
		t.Errorf("DFS visited %v", dfs)
	}

	// Early termination.
	count := 0
	g.BFSFrom(0, func(NodeID, int) bool { count++; return false })
	if count != 1 {
		t.Errorf("BFS early stop visited %d", count)
	}
	count = 0
	g.DFSFrom(0, func(NodeID) bool { count++; return false })
	if count != 1 {
		t.Errorf("DFS early stop visited %d", count)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(6)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(2, 3, nil)
	g.MustAddEdge(3, 4, nil)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if g.IsConnected() {
		t.Error("IsConnected on 3 components")
	}
	g.MustAddEdge(1, 2, nil)
	g.MustAddEdge(4, 5, nil)
	if !g.IsConnected() {
		t.Error("IsConnected after joining")
	}
}

func TestConnectedComponentsDirectedIsWeak(t *testing.T) {
	g := NewDirected()
	g.AddNodes(3)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(2, 1, nil) // 2 reaches 1 but nothing reaches 2
	if got := len(g.ConnectedComponents()); got != 1 {
		t.Errorf("weak components = %d, want 1", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(4)
	ab := g.MustAddEdge(0, 1, nil)
	bc := g.MustAddEdge(1, 2, nil)
	ac := g.MustAddEdge(0, 2, nil)
	g.MustAddEdge(2, 3, nil)
	w := map[EdgeID]float64{ab: 1, bc: 1, ac: 5}
	cost := func(e EdgeID) float64 {
		if c, ok := w[e]; ok {
			return c
		}
		return 1
	}
	p, ok := g.ShortestPath(0, 2, cost)
	if !ok {
		t.Fatal("no path")
	}
	if p.Cost != 2 || len(p.Nodes) != 3 || p.Nodes[1] != 1 {
		t.Errorf("path = %+v", p)
	}
	if len(p.Edges) != 2 || p.Edges[0] != ab || p.Edges[1] != bc {
		t.Errorf("path edges = %v", p.Edges)
	}

	// Unreachable target.
	g2 := NewUndirected()
	g2.AddNodes(2)
	if _, ok := g2.ShortestPath(0, 1, cost); ok {
		t.Error("found path in edgeless graph")
	}

	// Trivial path to self.
	p, ok = g.ShortestPath(1, 1, cost)
	if !ok || p.Cost != 0 || len(p.Nodes) != 1 {
		t.Errorf("self path = %+v, %v", p, ok)
	}
}

func TestPathsWithin(t *testing.T) {
	// Square 0-1-2-3-0 plus diagonal 0-2.
	g := NewUndirected()
	g.AddNodes(4)
	g.MustAddEdge(0, 1, nil)
	g.MustAddEdge(1, 2, nil)
	g.MustAddEdge(2, 3, nil)
	g.MustAddEdge(3, 0, nil)
	g.MustAddEdge(0, 2, nil)

	var got [][]NodeID
	g.PathsWithin(0, 2, 2, func(p Path) bool {
		got = append(got, p.Nodes)
		return true
	})
	// Expect 0-2 (1 hop), 0-1-2 and 0-3-2 (2 hops).
	if len(got) != 3 {
		t.Fatalf("paths = %v", got)
	}
	for _, p := range got {
		if p[0] != 0 || p[len(p)-1] != 2 || len(p) > 3 {
			t.Errorf("bad path %v", p)
		}
	}

	// Hop limit 1: only the direct edge.
	got = nil
	g.PathsWithin(0, 2, 1, func(p Path) bool {
		got = append(got, p.Nodes)
		return true
	})
	if len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("1-hop paths = %v", got)
	}

	// Early stop.
	n := 0
	g.PathsWithin(0, 2, 3, func(Path) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop yielded %d paths", n)
	}
}

func TestDistances(t *testing.T) {
	// Line 0-1-2-3 with unit costs, plus a shortcut 0-3 of cost 10.
	g := NewUndirected()
	g.AddNodes(4)
	for i := 0; i < 3; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), nil)
	}
	shortcut := g.MustAddEdge(0, 3, nil)
	cost := func(e EdgeID) float64 {
		if e == shortcut {
			return 10
		}
		return 1
	}
	d := g.Distances(0, cost)
	for i, want := range []float64{0, 1, 2, 3} {
		if d[i] != want {
			t.Errorf("dist[%d] = %v, want %v", i, d[i], want)
		}
	}
	// +Inf cost marks an edge unusable; node 3 is then reached only via
	// the line.
	d = g.Distances(3, func(e EdgeID) float64 {
		if e == shortcut {
			return math.Inf(1)
		}
		return 1
	})
	if d[0] != 3 {
		t.Errorf("dist[0] with unusable shortcut = %v, want 3", d[0])
	}
	// Unreachable nodes stay +Inf.
	iso := NewUndirected()
	iso.AddNodes(2)
	if d := iso.Distances(0, func(EdgeID) float64 { return 1 }); !math.IsInf(d[1], 1) {
		t.Errorf("unreachable dist = %v, want +Inf", d[1])
	}
}

// TestPathsWithinNegativeMaxHops pins the hop-bound hardening: a negative
// bound used to slip past the `len(edges) == maxHops` guard and enumerate
// every simple path of the graph. It must behave as an empty bound.
func TestPathsWithinNegativeMaxHops(t *testing.T) {
	g := NewUndirected()
	g.AddNodes(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), nil)
		}
	}
	for _, maxHops := range []int{-1, -100, 0} {
		n := 0
		g.PathsWithin(0, 2, maxHops, func(Path) bool { n++; return true })
		if n != 0 {
			t.Errorf("maxHops=%d yielded %d paths, want 0", maxHops, n)
		}
		// The trivial src==dst zero-edge path is still admitted.
		n = 0
		g.PathsWithin(3, 3, maxHops, func(p Path) bool {
			if len(p.Edges) != 0 {
				t.Errorf("maxHops=%d yielded non-trivial self path %v", maxHops, p.Nodes)
			}
			n++
			return true
		})
		if n != 1 {
			t.Errorf("maxHops=%d self paths = %d, want 1", maxHops, n)
		}
	}
}

// TestPathsWithinStop pins the cancellation hook: once stop reports true,
// the enumeration aborts without visiting further paths.
func TestPathsWithinStop(t *testing.T) {
	// Complete graph: plenty of simple paths to abandon.
	g := NewUndirected()
	g.AddNodes(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), nil)
		}
	}
	yields, polls := 0, 0
	g.PathsWithinStop(0, 7, 5, func() bool {
		polls++
		return yields >= 2 // cancel after the second witness
	}, func(Path) bool {
		yields++
		return true
	})
	if yields != 2 {
		t.Errorf("yields = %d, want enumeration cut at 2", yields)
	}
	if polls == 0 {
		t.Error("stop hook never polled")
	}

	// A stop that fires immediately yields nothing at all.
	yields = 0
	g.PathsWithinStop(0, 7, 5, func() bool { return true }, func(Path) bool {
		yields++
		return true
	})
	if yields != 0 {
		t.Errorf("immediate stop yielded %d paths", yields)
	}
}

// randomGraph builds a random undirected graph for property tests.
func randomGraph(r *rand.Rand, n, m int) *Graph {
	g := NewUndirected()
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u != v {
			g.AddEdge(u, v, nil) // duplicates silently rejected
		}
	}
	return g
}

func TestQuickValidateRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(30), r.Intn(80))
		if err := g.Validate(); err != nil {
			return false
		}
		// Components partition the node set.
		total := 0
		for _, c := range g.ConnectedComponents() {
			total += len(c)
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdjacencyMatchesEdgeIndex(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), r.Intn(50))
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			for _, a := range g.Arcs(u) {
				id, ok := g.EdgeBetween(u, a.To)
				if !ok || id != a.Edge {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickShortestPathIsValidWalk(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), 1+r.Intn(60))
		src := NodeID(r.Intn(g.NumNodes()))
		dst := NodeID(r.Intn(g.NumNodes()))
		p, ok := g.ShortestPath(src, dst, func(EdgeID) float64 { return 1 })
		if !ok {
			return true // unreachable is fine
		}
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
			return false
		}
		if len(p.Edges) != len(p.Nodes)-1 {
			return false
		}
		for i, e := range p.Edges {
			u, v := p.Nodes[i], p.Nodes[i+1]
			id, ok := g.EdgeBetween(u, v)
			if !ok || id != e {
				return false
			}
		}
		return p.Cost == float64(len(p.Edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
