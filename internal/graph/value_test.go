package graph

import "testing"

func TestValueConstructorsAndAccessors(t *testing.T) {
	n := Num(3.5)
	if k := n.Kind(); k != Number {
		t.Errorf("Num kind = %v", k)
	}
	if f, ok := n.Float(); !ok || f != 3.5 {
		t.Errorf("Num Float = %v,%v", f, ok)
	}
	if _, ok := n.Text(); ok {
		t.Error("Num Text ok")
	}

	s := Str("linux")
	if v, ok := s.Text(); !ok || v != "linux" {
		t.Errorf("Str Text = %v,%v", v, ok)
	}
	if _, ok := s.Float(); ok {
		t.Error("Str Float ok")
	}

	b := BoolVal(true)
	if v, ok := b.Truth(); !ok || !v {
		t.Errorf("Bool Truth = %v,%v", v, ok)
	}
	if v, _ := BoolVal(false).Truth(); v {
		t.Error("BoolVal(false) Truth = true")
	}

	var m Value
	if !m.IsMissing() {
		t.Error("zero value not missing")
	}
	if _, ok := m.Float(); ok {
		t.Error("missing Float ok")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Num(1), Num(1), true},
		{Num(1), Num(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{BoolVal(true), BoolVal(true), true},
		{BoolVal(true), BoolVal(false), false},
		{Num(1), Str("1"), false},
		{Value{}, Value{}, true},
		{Value{}, Num(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Num(2.5), "2.5"},
		{Num(10), "10"},
		{Str("hi"), "hi"},
		{BoolVal(true), "true"},
		{BoolVal(false), "false"},
		{Value{}, "<missing>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Missing.String() != "missing" || Number.String() != "number" ||
		String.String() != "string" || Bool.String() != "bool" {
		t.Error("Kind.String wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind = %q", Kind(42).String())
	}
}

func TestAttrs(t *testing.T) {
	var a Attrs // nil map must be readable
	if !a.Get("x").IsMissing() {
		t.Error("nil Attrs Get not missing")
	}
	if a.Has("x") {
		t.Error("nil Attrs Has = true")
	}
	a = a.SetNum("delay", 12)
	a = a.SetStr("os", "linux")
	a = a.SetBool("up", true)
	if d, ok := a.Float("delay"); !ok || d != 12 {
		t.Errorf("Float = %v,%v", d, ok)
	}
	if s, ok := a.Text("os"); !ok || s != "linux" {
		t.Errorf("Text = %v,%v", s, ok)
	}
	if !a.Has("up") {
		t.Error("Has(up) = false")
	}
	c := a.Clone()
	c.SetNum("delay", 99)
	if d, _ := a.Float("delay"); d != 12 {
		t.Error("Clone aliases original")
	}
	if Attrs(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}
