package graph

import (
	"bytes"
	"strings"
	"testing"
)

func dotFixture() *Graph {
	g := NewUndirected()
	g.AddNode("a", Attrs{}.SetStr("region", "eu"))
	g.AddNode("b", nil)
	g.AddNode("c", nil)
	g.MustAddEdge(0, 1, Attrs{}.SetNum("avgDelay", 12))
	g.MustAddEdge(1, 2, nil)
	return g
}

func TestWriteDotBasics(t *testing.T) {
	g := dotFixture()
	var buf bytes.Buffer
	if err := WriteDot(&buf, g, DotOptions{Name: "demo"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "demo" {`,
		`"a" [label="a"];`,
		`"a" -- "b";`,
		`"b" -- "c";`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Undirected graphs must not use arrows.
	if strings.Contains(out, "->") {
		t.Error("undirected graph rendered with ->")
	}
}

func TestWriteDotDirectedAndLabels(t *testing.T) {
	g := NewDirected()
	g.AddNode("x", Attrs{}.SetNum("cpu", 4))
	g.AddNode("y", nil)
	g.MustAddEdge(0, 1, Attrs{}.SetNum("avgDelay", 7))
	var buf bytes.Buffer
	err := WriteDot(&buf, g, DotOptions{
		NodeLabelAttrs: []string{"cpu"},
		EdgeLabelAttrs: []string{"avgDelay"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, `"x" -> "y"`) {
		t.Errorf("directed rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, `cpu=4`) {
		t.Errorf("node label attr missing:\n%s", out)
	}
	if !strings.Contains(out, `avgDelay=7`) {
		t.Errorf("edge label attr missing:\n%s", out)
	}
}

func TestWriteDotHighlightAndTruncation(t *testing.T) {
	g := dotFixture()
	var buf bytes.Buffer
	err := WriteDot(&buf, g, DotOptions{
		HighlightNodes: map[NodeID]bool{0: true},
		HighlightEdges: map[EdgeID]bool{0: true},
		MaxEdges:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "color=red") {
		t.Error("highlight missing")
	}
	if !strings.Contains(out, "1 of 2 edges omitted") {
		t.Errorf("truncation comment missing:\n%s", out)
	}
}

func TestEmbeddingDot(t *testing.T) {
	host := dotFixture()
	query := NewUndirected()
	query.AddNode("q0", nil)
	query.AddNode("q1", nil)
	query.MustAddEdge(0, 1, nil)

	var buf bytes.Buffer
	// Map q0->a, q1->b: host edge a-b must be highlighted.
	if err := EmbeddingDot(&buf, query, host, []NodeID{0, 1}, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"a" [label="a" color=red penwidth=2];`) {
		t.Errorf("mapped node not highlighted:\n%s", out)
	}
	if !strings.Contains(out, `"a" -- "b" [color=red penwidth=2];`) {
		t.Errorf("carrying edge not highlighted:\n%s", out)
	}

	// A mapping whose query edge has no hosting edge is rejected.
	if err := EmbeddingDot(&buf, query, host, []NodeID{0, 2}, DotOptions{}); err == nil {
		t.Error("invalid embedding rendered without error")
	}
	// Size mismatch rejected.
	if err := EmbeddingDot(&buf, query, host, []NodeID{0}, DotOptions{}); err == nil {
		t.Error("short mapping rendered without error")
	}
}

func TestSortedAttrNames(t *testing.T) {
	g := NewUndirected()
	g.AddNode("a", Attrs{}.SetStr("zeta", "1").SetNum("alpha", 2))
	g.AddNode("b", Attrs{}.SetBool("mid", true))
	names := SortedAttrNames(g)
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}
