package graph

import "fmt"

// Delta is an incremental change to a graph — the unit the monitoring
// infrastructure publishes instead of a whole re-measured network. All
// elements are addressed by name (the external identity GraphML and the
// service layer speak), never by NodeID: IDs are dense and renumber when
// nodes are removed, so they are meaningless across snapshots.
//
// ApplyDelta processes the operation groups in a fixed order:
//
//  1. RemoveEdges, then RemoveNodes (removing a node drops its incident
//     edges implicitly),
//  2. AddNodes, then AddEdges (so a delta can replace a node wholesale:
//     remove + re-add under the same name),
//  3. SetNodeAttrs, then SetEdgeAttrs, which may reference both surviving
//     and newly added elements.
type Delta struct {
	// RemoveEdges drops edges by endpoint names (order-insensitive on
	// undirected graphs).
	RemoveEdges []EdgeRef
	// RemoveNodes drops nodes (and their incident edges) by name.
	RemoveNodes []string
	// AddNodes inserts new named nodes with optional attribute bags.
	AddNodes []NodeSpec
	// AddEdges inserts new edges between named nodes.
	AddEdges []EdgeSpec
	// SetNodeAttrs edits node attribute bags: Set entries overwrite,
	// Unset names are removed.
	SetNodeAttrs []NodeAttrUpdate
	// SetEdgeAttrs edits edge attribute bags the same way.
	SetEdgeAttrs []EdgeAttrUpdate
}

// NodeSpec names a node added by a delta.
type NodeSpec struct {
	Name  string
	Attrs Attrs
}

// EdgeSpec names an edge added by a delta.
type EdgeSpec struct {
	Source, Target string
	Attrs          Attrs
}

// EdgeRef addresses an existing edge by endpoint names.
type EdgeRef struct {
	Source, Target string
}

// NodeAttrUpdate edits one node's attribute bag.
type NodeAttrUpdate struct {
	Node  string
	Set   Attrs
	Unset []string
}

// EdgeAttrUpdate edits one edge's attribute bag.
type EdgeAttrUpdate struct {
	Source, Target string
	Set            Attrs
	Unset          []string
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return d == nil ||
		len(d.RemoveEdges) == 0 && len(d.RemoveNodes) == 0 &&
			len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
			len(d.SetNodeAttrs) == 0 && len(d.SetEdgeAttrs) == 0
}

// Structural reports whether the delta changes the graph's topology
// (node or edge add/remove) rather than only attribute values. Structural
// deltas renumber IDs and force index rebuilds; attribute-only deltas are
// applied copy-on-write.
func (d *Delta) Structural() bool {
	return d != nil &&
		(len(d.RemoveEdges) > 0 || len(d.RemoveNodes) > 0 ||
			len(d.AddNodes) > 0 || len(d.AddEdges) > 0)
}

// Counts summarizes the delta for logs and API replies.
func (d *Delta) Counts() (structuralOps, attrOps int) {
	if d == nil {
		return 0, 0
	}
	return len(d.RemoveEdges) + len(d.RemoveNodes) + len(d.AddNodes) + len(d.AddEdges),
		len(d.SetNodeAttrs) + len(d.SetEdgeAttrs)
}

// ApplyDelta returns a new graph with d applied; g itself is never
// modified, so concurrent readers of g stay consistent. Attribute-only
// deltas take a copy-on-write fast path: the adjacency, edge index and
// name index are shared with g and only the node/edge records (plus the
// attribute bags actually touched) are copied. Structural deltas rebuild
// into a fresh graph, renumbering IDs densely.
//
// Errors (unknown names, duplicate adds, self-loops) leave no partial
// result: the returned graph is nil and g is untouched.
func (g *Graph) ApplyDelta(d *Delta) (*Graph, error) {
	if d.Empty() {
		return g, nil
	}
	if !d.Structural() {
		return g.applyAttrDelta(d)
	}
	return g.applyStructuralDelta(d)
}

// applyAttrDelta is the copy-on-write fast path for attribute-only deltas.
func (g *Graph) applyAttrDelta(d *Delta) (*Graph, error) {
	next := &Graph{
		directed: g.directed,
		nodes:    append([]Node(nil), g.nodes...),
		edges:    append([]Edge(nil), g.edges...),
		out:      g.out,   // structure is untouched: share adjacency,
		in:       g.in,    // the edge index and the name index with g
		index:    g.index, // (all are read-only after construction)
		names:    g.names,
	}
	for _, up := range d.SetNodeAttrs {
		id, ok := next.names[up.Node]
		if !ok {
			return nil, fmt.Errorf("graph: delta references unknown node %q", up.Node)
		}
		next.nodes[id].Attrs = patchAttrs(next.nodes[id].Attrs, up.Set, up.Unset)
	}
	for _, up := range d.SetEdgeAttrs {
		id, err := next.edgeByNames(up.Source, up.Target)
		if err != nil {
			return nil, err
		}
		next.edges[id].Attrs = patchAttrs(next.edges[id].Attrs, up.Set, up.Unset)
	}
	return next, nil
}

// patchAttrs returns a fresh bag with set/unset applied; the original bag
// is shared with the previous snapshot and must not be written.
func patchAttrs(old, set Attrs, unset []string) Attrs {
	out := old.Clone()
	for name, v := range set {
		out = out.Set(name, v)
	}
	for _, name := range unset {
		if out.Has(name) {
			delete(out, name)
		}
	}
	return out
}

// applyStructuralDelta rebuilds the graph with the delta's removals,
// additions and attribute edits applied, in the documented order.
//
//netembedvet:allow cowwrite next is freshly built by New in this function and every record slice below is grown by AddNode/AddEdge; nothing shares the storage until next is returned
func (g *Graph) applyStructuralDelta(d *Delta) (*Graph, error) {
	dropEdge := make(map[uint64]bool, len(d.RemoveEdges))
	for _, ref := range d.RemoveEdges {
		u, okU := g.names[ref.Source]
		v, okV := g.names[ref.Target]
		if !okU || !okV {
			return nil, fmt.Errorf("graph: delta removes unknown edge %q-%q", ref.Source, ref.Target)
		}
		key := g.edgeKey(u, v)
		if _, ok := g.index[key]; !ok {
			return nil, fmt.Errorf("graph: delta removes missing edge %q-%q", ref.Source, ref.Target)
		}
		dropEdge[key] = true
	}
	dropNode := make(map[string]bool, len(d.RemoveNodes))
	for _, name := range d.RemoveNodes {
		if _, ok := g.names[name]; !ok {
			return nil, fmt.Errorf("graph: delta removes unknown node %q", name)
		}
		dropNode[name] = true
	}

	next := New(g.directed)
	for _, n := range g.nodes {
		if !dropNode[n.Name] {
			next.AddNode(n.Name, n.Attrs.Clone())
		}
	}
	for _, spec := range d.AddNodes {
		if spec.Name == "" {
			return nil, fmt.Errorf("graph: delta adds a node without a name")
		}
		if _, dup := next.names[spec.Name]; dup {
			return nil, fmt.Errorf("graph: delta adds duplicate node %q", spec.Name)
		}
		next.AddNode(spec.Name, spec.Attrs.Clone())
	}
	for i, e := range g.edges {
		if dropEdge[g.edgeKey(e.From, e.To)] {
			continue
		}
		uName, vName := g.nodes[e.From].Name, g.nodes[e.To].Name
		if dropNode[uName] || dropNode[vName] {
			continue // incident edges leave with their node
		}
		u, _ := next.names[uName]
		v, _ := next.names[vName]
		if _, err := next.AddEdge(u, v, e.Attrs.Clone()); err != nil {
			return nil, fmt.Errorf("graph: delta rebuild of edge %d: %w", i, err)
		}
	}
	for _, spec := range d.AddEdges {
		u, okU := next.names[spec.Source]
		v, okV := next.names[spec.Target]
		if !okU || !okV {
			return nil, fmt.Errorf("graph: delta adds edge between unknown nodes %q-%q", spec.Source, spec.Target)
		}
		if _, err := next.AddEdge(u, v, spec.Attrs.Clone()); err != nil {
			return nil, fmt.Errorf("graph: delta edge %q-%q: %w", spec.Source, spec.Target, err)
		}
	}
	for _, up := range d.SetNodeAttrs {
		id, ok := next.names[up.Node]
		if !ok {
			return nil, fmt.Errorf("graph: delta references unknown node %q", up.Node)
		}
		next.nodes[id].Attrs = patchAttrs(next.nodes[id].Attrs, up.Set, up.Unset)
	}
	for _, up := range d.SetEdgeAttrs {
		id, err := next.edgeByNames(up.Source, up.Target)
		if err != nil {
			return nil, err
		}
		next.edges[id].Attrs = patchAttrs(next.edges[id].Attrs, up.Set, up.Unset)
	}
	return next, nil
}

// edgeByNames resolves an edge by endpoint names.
func (g *Graph) edgeByNames(source, target string) (EdgeID, error) {
	u, okU := g.names[source]
	v, okV := g.names[target]
	if !okU || !okV {
		return -1, fmt.Errorf("graph: delta references unknown edge %q-%q", source, target)
	}
	id, ok := g.index[g.edgeKey(u, v)]
	if !ok {
		return -1, fmt.Errorf("graph: delta references missing edge %q-%q", source, target)
	}
	return id, nil
}
