package coords

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netembed/internal/graph"
	"netembed/internal/trace"
)

// planarHost builds an undirected graph whose edge delays are exact
// Euclidean distances between random points in a plane — the ideal,
// perfectly embeddable workload.
func planarHost(n int, degree int, rng *rand.Rand) (*graph.Graph, [][2]float64) {
	g := graph.NewUndirected()
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
		g.AddNode("", nil)
	}
	dist := func(a, b int) float64 {
		dx := pts[a][0] - pts[b][0]
		dy := pts[a][1] - pts[b][1]
		return math.Hypot(dx, dy) + 1 // +1 keeps delays strictly positive
	}
	for i := 0; i < n; i++ {
		for k := 0; k < degree; k++ {
			j := rng.Intn(n)
			if j == i || g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				continue
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j),
				graph.Attrs{}.SetNum("avgDelay", dist(i, j)))
		}
	}
	return g, pts
}

// squash maps an arbitrary generated float64 into a numerically tame
// range so coordinate arithmetic cannot overflow to ±Inf.
func squash(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func squashCoord(v [3]float64, h float64) Coord {
	return Coord{
		Vec:    []float64{squash(v[0]), squash(v[1]), squash(v[2])},
		Height: math.Abs(squash(h)),
	}
}

func TestDistanceSymmetricNonNegative(t *testing.T) {
	prop := func(a, b [3]float64, ha, hb float64) bool {
		ca, cb := squashCoord(a, ha), squashCoord(b, hb)
		d1, d2 := ca.Distance(cb), cb.Distance(ca)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	// Height-vector distances form a metric: heights are non-negative,
	// so d(i,k) <= d(i,j) + d(j,k) always holds.
	prop := func(a, b, c [3]float64, ha, hb, hc float64) bool {
		ca, cb, cc := squashCoord(a, ha), squashCoord(b, hb), squashCoord(c, hc)
		lhs, rhs := ca.Distance(cc), ca.Distance(cb)+cb.Distance(cc)
		return lhs <= rhs+1e-6*math.Max(1, rhs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSelfIsTwiceHeight(t *testing.T) {
	c := Coord{Vec: []float64{3, 4}, Height: 2.5}
	if got := c.Distance(c); math.Abs(got-5) > 1e-12 {
		t.Fatalf("self distance = %v, want 2·height = 5", got)
	}
}

func TestObserveIgnoresBadSamples(t *testing.T) {
	s := New(2, Config{Dim: 2})
	before := s.Coord(0)
	s.Observe(0, 0, 10)          // self
	s.Observe(0, 1, 0)           // non-positive
	s.Observe(0, 1, -3)          //
	s.Observe(0, 1, math.NaN())  // NaN
	s.Observe(0, 1, math.Inf(1)) // Inf
	if s.Samples() != 0 {
		t.Fatalf("bad samples were counted: %d", s.Samples())
	}
	after := s.Coord(0)
	for k := range before.Vec {
		if before.Vec[k] != after.Vec[k] {
			t.Fatal("coordinate moved on rejected samples")
		}
	}
}

func TestObserveSeparatesColocatedNodes(t *testing.T) {
	s := New(2, Config{Dim: 2, Seed: 7})
	// Both nodes start at the origin; a positive RTT must push them
	// apart via a random direction rather than dividing by zero.
	s.Observe(0, 1, 50)
	if d := s.Predict(0, 1); d <= 0 || math.IsNaN(d) {
		t.Fatalf("predicted distance after separation = %v", d)
	}
}

func TestErrorEstimateStaysInUnitRange(t *testing.T) {
	s := New(3, Config{Dim: 2, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 5000; k++ {
		i, j := rng.Intn(3), rng.Intn(3)
		s.Observe(i, j, 1+rng.Float64()*1000)
	}
	for i := 0; i < s.Len(); i++ {
		if e := s.Error(i); e <= 0 || e > 1 {
			t.Fatalf("node %d error estimate %v out of (0,1]", i, e)
		}
	}
}

func TestEmbedConvergesOnPlanarMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, _ := planarHost(60, 8, rng)
	sys, traj, err := Embed(g, EmbedConfig{
		Rounds:          80,
		SamplesPerRound: 8,
		Config:          Config{Dim: 2, Seed: 5},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 80 {
		t.Fatalf("trajectory has %d rounds, want 80", len(traj))
	}
	final := Errors(sys, g, "avgDelay")
	if final.Median > 0.15 {
		t.Fatalf("median relative error %.3f on exactly-embeddable workload, want <= 0.15", final.Median)
	}
	if traj[len(traj)-1].MedianErr >= traj[0].MedianErr {
		t.Fatalf("error did not decrease: round0 %.3f, final %.3f",
			traj[0].MedianErr, traj[len(traj)-1].MedianErr)
	}
}

func TestEmbedOnSyntheticPlanetLab(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 60}, rng)
	sys, _, err := Embed(host, EmbedConfig{Rounds: 60, Config: Config{Heights: true, Seed: 9}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	es := Errors(sys, host, "avgDelay")
	if es.Edges == 0 {
		t.Fatal("no measured edges evaluated")
	}
	// Real(istic) delay matrices violate the triangle inequality, so the
	// fit is imperfect — but it must stay far below the cold-start error
	// of ~1.0 for the completion service to be useful.
	if es.Median > 0.5 {
		t.Fatalf("median relative error %.3f on synthetic PlanetLab, want <= 0.5", es.Median)
	}
}

func TestEmbedErrorsWithoutAttribute(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(3)
	g.MustAddEdge(0, 1, nil)
	if _, _, err := Embed(g, EmbedConfig{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Embed accepted a graph without delay measurements")
	}
}

func TestDensifyCompletesMissingPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, _ := planarHost(30, 4, rng)
	missing := 30*29/2 - g.NumEdges()
	sys, _, err := Embed(g, EmbedConfig{Rounds: 40, Config: Config{Dim: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	added, err := Densify(g, sys, DensifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if added != missing {
		t.Fatalf("Densify added %d edges, want %d", added, missing)
	}
	if g.NumEdges() != 30*29/2 {
		t.Fatalf("graph has %d edges after completion, want full mesh", g.NumEdges())
	}
	// Every synthesized edge carries the mark and a consistent window.
	marked := 0
	for e := 0; e < g.NumEdges(); e++ {
		attrs := g.Edge(graph.EdgeID(e)).Attrs
		if v := attrs.Get("predicted"); !v.IsMissing() {
			marked++
			lo, _ := attrs.Float("minDelay")
			av, _ := attrs.Float("avgDelay")
			hi, _ := attrs.Float("maxDelay")
			if !(lo <= av && av <= hi) || av <= 0 {
				t.Fatalf("synthesized window [%v %v %v] inconsistent", lo, av, hi)
			}
		}
	}
	if marked != added {
		t.Fatalf("%d edges marked predicted, want %d", marked, added)
	}
}

func TestDensifyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, _ := planarHost(20, 3, rng)
	sys, _, err := Embed(g, EmbedConfig{Rounds: 10, Config: Config{Dim: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	added, err := Densify(g, sys, DensifyConfig{MaxEdges: 5})
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("MaxEdges ignored: added %d", added)
	}
}

func TestDensifyRejectsMismatchedSystem(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNodes(4)
	if _, err := Densify(g, New(3, Config{}), DensifyConfig{}); err == nil {
		t.Fatal("Densify accepted a system of the wrong size")
	}
	if _, err := Densify(g, nil, DensifyConfig{}); err != ErrNilSystem {
		t.Fatalf("nil system: got %v, want ErrNilSystem", err)
	}
	d := graph.NewDirected()
	d.AddNodes(2)
	if _, err := Densify(d, New(2, Config{}), DensifyConfig{}); err == nil {
		t.Fatal("Densify accepted a directed graph")
	}
}

func TestDensifiedDelaysStayMetric(t *testing.T) {
	// Coordinate predictions are distances in a metric space, so the
	// completed delay matrix must satisfy the triangle inequality over
	// predicted edges (measured edges may still violate it).
	rng := rand.New(rand.NewSource(23))
	g, _ := planarHost(15, 3, rng)
	sys, _, err := Embed(g, EmbedConfig{Rounds: 30, Config: Config{Dim: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				ab := sys.Predict(a, b)
				bc := sys.Predict(b, c)
				ac := sys.Predict(a, c)
				if ac > ab+bc+1e-9 {
					t.Fatalf("triangle violated: d(%d,%d)=%v > %v", a, c, ac, ab+bc)
				}
			}
		}
	}
}

func TestSystemString(t *testing.T) {
	s := New(5, Config{Dim: 2})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
