package coords

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"netembed/internal/graph"
	"netembed/internal/stats"
)

// EmbedConfig drives a simulated Vivaldi deployment over a hosting
// network: every round, every node observes the measured delay to a few
// random neighbors, exactly as deployed Vivaldi agents gossip with their
// neighbor sets.
type EmbedConfig struct {
	// Attr is the edge attribute holding the measured delay
	// (default "avgDelay", the PlanetLab trace convention).
	Attr string
	// Rounds of gossip (default 64).
	Rounds int
	// SamplesPerRound is how many neighbor observations each node makes
	// per round (default 4).
	SamplesPerRound int
	// Config tunes the underlying coordinate system.
	Config Config
}

func (c EmbedConfig) withDefaults() EmbedConfig {
	if c.Attr == "" {
		c.Attr = "avgDelay"
	}
	if c.Rounds <= 0 {
		c.Rounds = 64
	}
	if c.SamplesPerRound <= 0 {
		c.SamplesPerRound = 4
	}
	return c
}

// RoundStats records the fit quality after one gossip round.
type RoundStats struct {
	Round     int
	MedianErr float64 // median relative error over measured edges
	MeanErr   float64
}

// Embed runs the simulated deployment and returns the converged system
// together with the per-round error trajectory. It fails when the graph
// has no edge carrying the configured delay attribute.
func Embed(g *graph.Graph, cfg EmbedConfig, rng *rand.Rand) (*System, []RoundStats, error) {
	cfg = cfg.withDefaults()
	sys := New(g.NumNodes(), cfg.Config)

	measured := 0
	for e := 0; e < g.NumEdges(); e++ {
		if _, ok := g.Edge(graph.EdgeID(e)).Attrs.Float(cfg.Attr); ok {
			measured++
		}
	}
	if measured == 0 {
		return nil, nil, fmt.Errorf("coords: no edge carries attribute %q", cfg.Attr)
	}

	trajectory := make([]RoundStats, 0, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < g.NumNodes(); i++ {
			arcs := g.Arcs(graph.NodeID(i))
			if len(arcs) == 0 {
				continue
			}
			for s := 0; s < cfg.SamplesPerRound; s++ {
				a := arcs[rng.Intn(len(arcs))]
				rtt, ok := g.Edge(a.Edge).Attrs.Float(cfg.Attr)
				if !ok {
					continue
				}
				sys.Observe(i, int(a.To), rtt)
			}
		}
		es := Errors(sys, g, cfg.Attr)
		trajectory = append(trajectory, RoundStats{
			Round:     round,
			MedianErr: es.Median,
			MeanErr:   es.Summary.Mean,
		})
	}
	return sys, trajectory, nil
}

// ErrorStats quantifies how well a coordinate system reproduces the
// measured delays of a graph.
type ErrorStats struct {
	Summary stats.Summary // over per-edge relative errors
	Median  float64
	P90     float64
	Edges   int // measured edges evaluated
}

// Errors computes the relative prediction error |pred-measured|/measured
// over every edge of g carrying the delay attribute.
func Errors(sys *System, g *graph.Graph, attr string) ErrorStats {
	if attr == "" {
		attr = "avgDelay"
	}
	var errs []float64
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		rtt, ok := ed.Attrs.Float(attr)
		if !ok || rtt <= 0 {
			continue
		}
		pred := sys.Predict(int(ed.From), int(ed.To))
		errs = append(errs, math.Abs(pred-rtt)/rtt)
	}
	if len(errs) == 0 {
		return ErrorStats{}
	}
	return ErrorStats{
		Summary: stats.Summarize(errs),
		Median:  stats.Percentile(errs, 0.5),
		P90:     stats.Percentile(errs, 0.9),
		Edges:   len(errs),
	}
}

// DensifyConfig controls coordinate-based completion of a partially
// measured hosting network.
type DensifyConfig struct {
	// Spread widens the predicted delay into a [min,max] window:
	// minDelay = pred·(1−Spread), maxDelay = pred·(1+Spread)
	// (default 0.15 — network coordinates are estimates, and embedding
	// constraints should see an honest uncertainty band).
	Spread float64
	// MarkAttr names the boolean attribute stamped on synthesized edges
	// so queries can exclude estimated links (default "predicted";
	// disable with "-").
	MarkAttr string
	// MaxEdges bounds how many predicted edges are added (0 = no bound).
	MaxEdges int
}

func (c DensifyConfig) withDefaults() DensifyConfig {
	if c.Spread <= 0 {
		c.Spread = 0.15
	}
	if c.MarkAttr == "" {
		c.MarkAttr = "predicted"
	}
	return c
}

// ErrNilSystem reports a Densify call without a coordinate system.
var ErrNilSystem = errors.New("coords: nil system")

// Densify adds an edge for every unmeasured node pair of g, stamped with
// the coordinate-predicted delay window (minDelay/avgDelay/maxDelay) and
// the MarkAttr flag. It returns the number of edges added. The input
// graph is modified in place; callers wanting to preserve the sparse
// original should Clone first (the service layer does).
func Densify(g *graph.Graph, sys *System, cfg DensifyConfig) (int, error) {
	if sys == nil {
		return 0, ErrNilSystem
	}
	if sys.Len() != g.NumNodes() {
		return 0, fmt.Errorf("coords: system covers %d nodes, graph has %d", sys.Len(), g.NumNodes())
	}
	if g.Directed() {
		return 0, errors.New("coords: Densify requires an undirected hosting network")
	}
	cfg = cfg.withDefaults()
	added := 0
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				continue
			}
			if cfg.MaxEdges > 0 && added >= cfg.MaxEdges {
				return added, nil
			}
			pred := sys.Predict(u, v)
			attrs := graph.Attrs{}.
				SetNum("minDelay", pred*(1-cfg.Spread)).
				SetNum("avgDelay", pred).
				SetNum("maxDelay", pred*(1+cfg.Spread))
			if cfg.MarkAttr != "-" {
				attrs = attrs.SetBool(cfg.MarkAttr, true)
			}
			if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), attrs); err != nil {
				return added, err
			}
			added++
		}
	}
	return added, nil
}
