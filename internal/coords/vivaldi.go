// Package coords implements the Vivaldi decentralized network coordinate
// system (Dabek, Cox, Kaashoek and Morris, SIGCOMM 2004 — reference [30]
// of the NETEMBED paper).
//
// NETEMBED's service model (§III, Figure 1) depends on "a model of the
// real network that characterizes the resources available", maintained by
// a monitoring service. On closed testbeds that model can be measured
// exhaustively, but §II points out that open networks (the Internet,
// PlanetLab overlays) never expose a complete all-pairs characterization.
// Network coordinates close the gap: after embedding the nodes into a
// low-dimensional metric space from a sparse sample of measured delays,
// the coordinate distance predicts the delay of every unmeasured pair, so
// the mapping service can answer queries over edges no monitor ever
// probed. Densify applies exactly that completion to a hosting network.
//
// The implementation follows the Vivaldi paper: spring-relaxation updates
// with an adaptive timestep weighted by per-node error estimates, and the
// "height vector" augmentation that models the access-link penalty which
// plain Euclidean spaces cannot express.
package coords

import (
	"fmt"
	"math"
	"math/rand"
)

// Coord is one node's network coordinate: a point in a low-dimensional
// Euclidean space plus a non-negative height. Under the height-vector
// model the predicted latency between two nodes is the Euclidean distance
// between their points plus both heights.
type Coord struct {
	Vec    []float64 // Euclidean component
	Height float64   // access-link penalty (0 when heights are disabled)
}

// Clone returns an independent copy of c.
func (c Coord) Clone() Coord {
	v := make([]float64, len(c.Vec))
	copy(v, c.Vec)
	return Coord{Vec: v, Height: c.Height}
}

// Distance returns the predicted latency between c and o: the Euclidean
// distance between the vector parts plus both heights.
func (c Coord) Distance(o Coord) float64 {
	var s float64
	for i := range c.Vec {
		d := c.Vec[i] - o.Vec[i]
		s += d * d
	}
	return math.Sqrt(s) + c.Height + o.Height
}

// magnitude of the Euclidean part only.
func (c Coord) magnitude() float64 {
	var s float64
	for _, x := range c.Vec {
		s += x * x
	}
	return math.Sqrt(s)
}

// Config tunes a coordinate System. The zero value selects the constants
// recommended by the Vivaldi paper.
type Config struct {
	// Dim is the dimensionality of the Euclidean component (default 3;
	// the Vivaldi paper finds 2–3 dimensions plus height sufficient for
	// Internet RTTs).
	Dim int
	// Ce dampens the moving average over per-node error estimates
	// (default 0.25).
	Ce float64
	// Cc scales the adaptive timestep (default 0.25).
	Cc float64
	// Heights enables the height-vector model. Disable for synthetic
	// workloads that are exactly Euclidean.
	Heights bool
	// MinHeight floors the height when heights are enabled (default 100µs
	// in the Vivaldi paper; expressed here in the same unit as the RTT
	// samples, default 0.1).
	MinHeight float64
	// Seed drives the random unit vectors used to separate co-located
	// nodes (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 3
	}
	if c.Ce <= 0 {
		c.Ce = 0.25
	}
	if c.Cc <= 0 {
		c.Cc = 0.25
	}
	if c.MinHeight <= 0 {
		c.MinHeight = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// System holds the evolving coordinates of a set of nodes. It is the
// state a monitoring layer keeps per hosting network. A System is not
// safe for concurrent use; monitors own one goroutine each.
type System struct {
	cfg     Config
	coords  []Coord
	errs    []float64 // per-node error estimate in (0, 1]
	samples int64
	rng     *rand.Rand
}

// New returns a System for n nodes, all starting at the origin with
// maximal error, per the Vivaldi paper's cold-start rule.
func New(n int, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:    cfg,
		coords: make([]Coord, n),
		errs:   make([]float64, n),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range s.coords {
		s.coords[i] = Coord{Vec: make([]float64, cfg.Dim)}
		if cfg.Heights {
			s.coords[i].Height = cfg.MinHeight
		}
		s.errs[i] = 1
	}
	return s
}

// Len returns the number of nodes in the system.
func (s *System) Len() int { return len(s.coords) }

// Samples returns the number of RTT observations applied so far.
func (s *System) Samples() int64 { return s.samples }

// Coord returns a copy of node i's current coordinate.
func (s *System) Coord(i int) Coord { return s.coords[i].Clone() }

// Error returns node i's current error estimate in (0, 1].
func (s *System) Error(i int) float64 { return s.errs[i] }

// Predict returns the latency the coordinate space predicts between nodes
// i and j.
func (s *System) Predict(i, j int) float64 {
	return s.coords[i].Distance(s.coords[j])
}

// Observe applies one RTT measurement from node i to node j, moving i
// (and only i — Vivaldi is fully decentralized, each endpoint reacts to
// its own samples) along the spring force between the two coordinates.
// Non-positive or non-finite RTTs are ignored.
func (s *System) Observe(i, j int, rtt float64) {
	if i == j || rtt <= 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		return
	}
	s.samples++
	ci, cj := &s.coords[i], &s.coords[j]

	// Confidence weight: how much i trusts this sample relative to its
	// own accumulated error.
	w := s.errs[i] / (s.errs[i] + s.errs[j])

	dist := ci.Distance(*cj)
	sampleErr := math.Abs(dist-rtt) / rtt

	// Exponentially-weighted moving average over the relative error.
	alpha := s.cfg.Ce * w
	s.errs[i] = sampleErr*alpha + s.errs[i]*(1-alpha)
	if s.errs[i] > 1 {
		s.errs[i] = 1
	}

	// Adaptive timestep: move further when uncertain, settle when
	// confident.
	delta := s.cfg.Cc * w
	force := delta * (rtt - dist)

	// Unit vector from j towards i in the Euclidean part; a random
	// direction separates co-located nodes.
	dir := make([]float64, len(ci.Vec))
	var mag float64
	for k := range dir {
		dir[k] = ci.Vec[k] - cj.Vec[k]
		mag += dir[k] * dir[k]
	}
	mag = math.Sqrt(mag)
	if mag < 1e-9 {
		mag = 0
		for k := range dir {
			dir[k] = s.rng.NormFloat64()
			mag += dir[k] * dir[k]
		}
		mag = math.Sqrt(mag)
	}
	for k := range dir {
		ci.Vec[k] += force * dir[k] / mag
	}
	if s.cfg.Heights {
		// Height vectors stretch along the "vertical" axis: the height
		// component of the unit vector is h_i + h_j over the full
		// distance (Vivaldi §5.4); pulling closer shrinks the height,
		// pushing apart grows it.
		if dist > 0 {
			ci.Height += force * (ci.Height + cj.Height) / dist
		}
		if ci.Height < s.cfg.MinHeight {
			ci.Height = s.cfg.MinHeight
		}
	}
}

// String summarizes the system state.
func (s *System) String() string {
	var sum float64
	for _, e := range s.errs {
		sum += e
	}
	mean := 0.0
	if len(s.errs) > 0 {
		mean = sum / float64(len(s.errs))
	}
	return fmt.Sprintf("coords.System{nodes: %d, dim: %d, samples: %d, meanErr: %.3f}",
		len(s.coords), s.cfg.Dim, s.samples, mean)
}
