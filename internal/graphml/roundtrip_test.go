package graphml

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"netembed/internal/graph"
)

// randomGraph builds a graph with randomly typed node and edge attributes
// drawn from a fixed name pool, exercising every attribute kind the codec
// supports plus name round-tripping.
func randomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New(rng.Intn(2) == 0)
	n := 1 + rng.Intn(12)
	// GraphML <key> declarations are typed, so an attribute name must
	// keep one kind throughout a document; pick the kind per graph.
	attrPool := []string{"delay", "bw", "os", "up", "x"}
	kinds := make(map[string]int, len(attrPool))
	for _, name := range attrPool {
		kinds[name] = rng.Intn(3)
	}
	randAttrs := func() graph.Attrs {
		attrs := graph.Attrs{}
		for _, name := range attrPool {
			if rng.Intn(4) == 3 { // leave it out sometimes
				continue
			}
			switch kinds[name] {
			case 0:
				attrs = attrs.SetNum(name, math60(rng))
			case 1:
				attrs = attrs.SetStr(name, fmt.Sprintf("s%d", rng.Intn(100)))
			case 2:
				attrs = attrs.SetBool(name, rng.Intn(2) == 0)
			}
		}
		if len(attrs) == 0 {
			return nil
		}
		return attrs
	}
	for i := 0; i < n; i++ {
		name := ""
		if rng.Intn(3) > 0 {
			name = fmt.Sprintf("node-%d", i)
		}
		g.AddNode(name, randAttrs())
	}
	for i := 0; i < n*2; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		// AddEdge rejects duplicates; ignore those.
		g.AddEdge(u, v, randAttrs()) //nolint:errcheck
	}
	return g
}

// math60 draws numbers that survive the codec's decimal text form
// exactly (integers and halves).
func math60(rng *rand.Rand) float64 {
	return float64(rng.Intn(1000)) / 2
}

func TestRoundTripRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, buf.String())
		}
		assertGraphsEqual(t, trial, g, got)
	}
}

func assertGraphsEqual(t *testing.T, trial int, want, got *graph.Graph) {
	t.Helper()
	if got.Directed() != want.Directed() {
		t.Fatalf("trial %d: directedness changed", trial)
	}
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("trial %d: size changed: %d/%d nodes, %d/%d edges",
			trial, got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
	}
	for i := 0; i < want.NumNodes(); i++ {
		w, g := want.Node(graph.NodeID(i)), got.Node(graph.NodeID(i))
		if w.Name != g.Name {
			t.Fatalf("trial %d: node %d name %q != %q", trial, i, g.Name, w.Name)
		}
		assertAttrsEqual(t, trial, fmt.Sprintf("node %d", i), w.Attrs, g.Attrs)
	}
	for i := 0; i < want.NumEdges(); i++ {
		w, g := want.Edge(graph.EdgeID(i)), got.Edge(graph.EdgeID(i))
		if w.From != g.From || w.To != g.To {
			t.Fatalf("trial %d: edge %d endpoints (%d,%d) != (%d,%d)",
				trial, i, g.From, g.To, w.From, w.To)
		}
		assertAttrsEqual(t, trial, fmt.Sprintf("edge %d", i), w.Attrs, g.Attrs)
	}
}

func assertAttrsEqual(t *testing.T, trial int, where string, want, got graph.Attrs) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d: %s: %d attrs round-tripped to %d", trial, where, len(want), len(got))
	}
	for name, wv := range want {
		gv := got.Get(name)
		if !wv.Equal(gv) {
			t.Fatalf("trial %d: %s: attr %s: %v != %v", trial, where, name, gv, wv)
		}
	}
}
