// Package graphml encodes and decodes graphs in the GraphML interchange
// format, the network representation NETEMBED adopts (paper §VI-A).
//
// The subset implemented is the GraphML structural layer used in practice
// by topology tools: a single <graph> element with edgedefault, <key>
// declarations carrying attr.name/attr.type (boolean, int, long, float,
// double, string) with optional <default> values, and <data> elements on
// nodes and edges. Typed attributes round-trip into graph.Attrs values.
package graphml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"netembed/internal/graph"
)

// xmlns is the GraphML namespace emitted by Encode.
const xmlns = "http://graphml.graphdrawing.org/xmlns"

type xmlGraphML struct {
	XMLName xml.Name   `xml:"graphml"`
	Xmlns   string     `xml:"xmlns,attr,omitempty"`
	Keys    []xmlKey   `xml:"key"`
	Graphs  []xmlGraph `xml:"graph"`
}

type xmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
	AttrType string `xml:"attr.type,attr"`
	Default  string `xml:"default,omitempty"`
}

type xmlGraph struct {
	ID          string    `xml:"id,attr,omitempty"`
	EdgeDefault string    `xml:"edgedefault,attr"`
	Nodes       []xmlNode `xml:"node"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string    `xml:"source,attr"`
	Target string    `xml:"target,attr"`
	Data   []xmlData `xml:"data"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// Decode reads one GraphML document from r and returns its first graph.
func Decode(r io.Reader) (*graph.Graph, error) {
	var doc xmlGraphML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphml: %v", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("graphml: document contains no <graph>")
	}
	xg := doc.Graphs[0]

	type keyInfo struct {
		name   string
		typ    string
		target string // "node", "edge", "all"
		def    string
		hasDef bool
	}
	keys := make(map[string]keyInfo, len(doc.Keys))
	for _, k := range doc.Keys {
		name := k.AttrName
		if name == "" {
			name = k.ID
		}
		target := k.For
		if target == "" {
			target = "all"
		}
		keys[k.ID] = keyInfo{
			name:   name,
			typ:    strings.ToLower(k.AttrType),
			target: target,
			def:    k.Default,
			hasDef: strings.TrimSpace(k.Default) != "",
		}
	}

	parse := func(ki keyInfo, raw string) (graph.Value, error) {
		raw = strings.TrimSpace(raw)
		switch ki.typ {
		case "boolean":
			b, err := strconv.ParseBool(raw)
			if err != nil {
				return graph.Value{}, fmt.Errorf("graphml: bad boolean %q for key %q", raw, ki.name)
			}
			return graph.BoolVal(b), nil
		case "int", "long", "float", "double":
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return graph.Value{}, fmt.Errorf("graphml: bad number %q for key %q", raw, ki.name)
			}
			return graph.Num(f), nil
		case "string", "":
			return graph.Str(raw), nil
		}
		return graph.Value{}, fmt.Errorf("graphml: unsupported attr.type %q", ki.typ)
	}

	collect := func(data []xmlData, target string) (graph.Attrs, error) {
		var attrs graph.Attrs
		seen := make(map[string]bool)
		for _, d := range data {
			ki, ok := keys[d.Key]
			if !ok {
				return nil, fmt.Errorf("graphml: <data> references undeclared key %q", d.Key)
			}
			v, err := parse(ki, d.Value)
			if err != nil {
				return nil, err
			}
			attrs = attrs.Set(ki.name, v)
			seen[d.Key] = true
		}
		// Apply declared defaults for keys of this target.
		for id, ki := range keys {
			if seen[id] || !ki.hasDef {
				continue
			}
			if ki.target != target && ki.target != "all" {
				continue
			}
			v, err := parse(ki, ki.def)
			if err != nil {
				return nil, err
			}
			attrs = attrs.Set(ki.name, v)
		}
		return attrs, nil
	}

	directed := false
	switch xg.EdgeDefault {
	case "directed":
		directed = true
	case "undirected", "":
	default:
		return nil, fmt.Errorf("graphml: unsupported edgedefault %q", xg.EdgeDefault)
	}

	g := graph.New(directed)
	ids := make(map[string]graph.NodeID, len(xg.Nodes))
	for _, xn := range xg.Nodes {
		if xn.ID == "" {
			return nil, fmt.Errorf("graphml: node without id")
		}
		if _, dup := ids[xn.ID]; dup {
			return nil, fmt.Errorf("graphml: duplicate node id %q", xn.ID)
		}
		attrs, err := collect(xn.Data, "node")
		if err != nil {
			return nil, err
		}
		ids[xn.ID] = g.AddNode(xn.ID, attrs)
	}
	for _, xe := range xg.Edges {
		u, ok := ids[xe.Source]
		if !ok {
			return nil, fmt.Errorf("graphml: edge references unknown node %q", xe.Source)
		}
		v, ok := ids[xe.Target]
		if !ok {
			return nil, fmt.Errorf("graphml: edge references unknown node %q", xe.Target)
		}
		attrs, err := collect(xe.Data, "edge")
		if err != nil {
			return nil, err
		}
		if _, err := g.AddEdge(u, v, attrs); err != nil {
			return nil, fmt.Errorf("graphml: edge %q->%q: %v", xe.Source, xe.Target, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DecodeString decodes a GraphML document held in a string.
func DecodeString(s string) (*graph.Graph, error) {
	return Decode(strings.NewReader(s))
}

// Encode writes g to w as a GraphML document. Attribute keys are declared
// per target (node/edge) with types inferred from the values; mixing types
// under one attribute name on the same target is rejected. Key IDs are
// canonical: attribute names are collected first and IDs assigned in
// sorted-name order (dn0, dn1, … for nodes; de0, de1, … for edges), so
// equal graphs always serialize to identical bytes — golden files and
// fingerprints over the encoding are stable across runs.
func Encode(w io.Writer, g *graph.Graph) error {
	type keySlot struct {
		id   string
		kind graph.Kind
	}
	nodeKeys := make(map[string]*keySlot)
	edgeKeys := make(map[string]*keySlot)

	register := func(m map[string]*keySlot, attrs graph.Attrs) error {
		for name, v := range attrs {
			if v.IsMissing() {
				continue
			}
			if slot, ok := m[name]; ok {
				if slot.kind != v.Kind() {
					return fmt.Errorf("graphml: attribute %q has mixed kinds %v and %v", name, slot.kind, v.Kind())
				}
				continue
			}
			m[name] = &keySlot{kind: v.Kind()}
		}
		return nil
	}
	for i := 0; i < g.NumNodes(); i++ {
		if err := register(nodeKeys, g.Node(graph.NodeID(i)).Attrs); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if err := register(edgeKeys, g.Edge(graph.EdgeID(i)).Attrs); err != nil {
			return err
		}
	}
	// Assign IDs only after the full attribute sets are known, in sorted
	// name order — map iteration order must never leak into the document.
	assignIDs := func(m map[string]*keySlot, prefix string) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			m[name].id = fmt.Sprintf("%s%d", prefix, i)
		}
	}
	assignIDs(nodeKeys, "dn")
	assignIDs(edgeKeys, "de")

	typeName := func(k graph.Kind) string {
		switch k {
		case graph.Number:
			return "double"
		case graph.Bool:
			return "boolean"
		default:
			return "string"
		}
	}

	doc := xmlGraphML{Xmlns: xmlns}
	appendKeys := func(m map[string]*keySlot, target string) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			doc.Keys = append(doc.Keys, xmlKey{
				ID:       m[name].id,
				For:      target,
				AttrName: name,
				AttrType: typeName(m[name].kind),
			})
		}
	}
	appendKeys(nodeKeys, "node")
	appendKeys(edgeKeys, "edge")

	dataFor := func(m map[string]*keySlot, attrs graph.Attrs) []xmlData {
		names := make([]string, 0, len(attrs))
		for name, v := range attrs {
			if !v.IsMissing() {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		out := make([]xmlData, 0, len(names))
		for _, name := range names {
			out = append(out, xmlData{Key: m[name].id, Value: attrs.Get(name).String()})
		}
		return out
	}

	edgeDefault := "undirected"
	if g.Directed() {
		edgeDefault = "directed"
	}
	xg := xmlGraph{ID: "G", EdgeDefault: edgeDefault}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(graph.NodeID(i))
		xg.Nodes = append(xg.Nodes, xmlNode{ID: n.Name, Data: dataFor(nodeKeys, n.Attrs)})
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		xg.Edges = append(xg.Edges, xmlEdge{
			Source: g.Node(e.From).Name,
			Target: g.Node(e.To).Name,
			Data:   dataFor(edgeKeys, e.Attrs),
		})
	}
	doc.Graphs = []xmlGraph{xg}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("graphml: %v", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// EncodeString renders g as a GraphML document string.
func EncodeString(g *graph.Graph) (string, error) {
	var sb strings.Builder
	if err := Encode(&sb, g); err != nil {
		return "", err
	}
	return sb.String(), nil
}
