package graphml

import (
	"strings"
	"testing"
)

// FuzzDecode asserts the decoder never panics on arbitrary input and that
// everything it accepts re-encodes and decodes to the same shape.
func FuzzDecode(f *testing.F) {
	f.Add(sample)
	f.Add(`<graphml><graph edgedefault="undirected"><node id="a"/></graph></graphml>`)
	f.Add(`<graphml><graph edgedefault="directed"><node id="a"/><node id="b"/><edge source="a" target="b"/></graph></graphml>`)
	f.Add(`<graphml><key id="k" for="edge" attr.name="w" attr.type="double"><default>1</default></key><graph edgedefault="undirected"/></graphml>`)
	f.Add(`not xml at all`)
	f.Add(`<graphml>`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := DecodeString(src)
		if err != nil {
			return
		}
		// Accepted documents must satisfy graph invariants and re-encode.
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph invalid: %v", err)
		}
		text, err := EncodeString(g)
		if err != nil {
			// Mixed attribute kinds across elements can be un-encodable;
			// anything else should round-trip.
			if strings.Contains(err.Error(), "mixed kinds") {
				return
			}
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := DecodeString(text)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, text)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}
