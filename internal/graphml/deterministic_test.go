package graphml

import (
	"fmt"
	"strings"
	"testing"

	"netembed/internal/graph"
)

// TestEncodeDeterministicKeyIDs is the regression test for the map-order
// key-ID bug: a node (or edge) introducing several attributes at once
// used to get its key IDs assigned in map iteration order, so the same
// graph serialized differently across runs. IDs are now assigned in
// sorted attribute-name order, making the byte stream canonical.
func TestEncodeDeterministicKeyIDs(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.NewUndirected()
		// One attribute bag introducing many names at once: the shape
		// that exercised map iteration order during key registration.
		a := g.AddNode("a", graph.Attrs{}.
			SetNum("zeta", 1).SetNum("alpha", 2).SetStr("mid", "x").
			SetBool("beta", true).SetNum("omega", 3).SetNum("gamma", 4))
		b := g.AddNode("b", graph.Attrs{}.SetNum("alpha", 5))
		g.MustAddEdge(a, b, graph.Attrs{}.
			SetNum("delay", 1).SetNum("bw", 2).SetStr("kind", "fiber"))
		return g
	}

	first, err := EncodeString(build())
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding freshly built equal graphs must be byte-identical; with
	// randomized map iteration, 50 rounds catch a regression with
	// overwhelming probability.
	for i := 0; i < 50; i++ {
		doc, err := EncodeString(build())
		if err != nil {
			t.Fatal(err)
		}
		if doc != first {
			t.Fatalf("round %d: serialization differs:\n%s\n---\n%s", i, first, doc)
		}
	}

	// The IDs themselves are pinned: sorted attribute names get dn0..dnN
	// (nodes) and de0..deN (edges).
	wantNode := []string{"alpha", "beta", "gamma", "mid", "omega", "zeta"}
	for i, name := range wantNode {
		want := fmt.Sprintf(`<key id="dn%d" for="node" attr.name=%q`, i, name)
		if !strings.Contains(first, want) {
			t.Errorf("missing canonical key declaration %s", want)
		}
	}
	wantEdge := []string{"bw", "delay", "kind"}
	for i, name := range wantEdge {
		want := fmt.Sprintf(`<key id="de%d" for="edge" attr.name=%q`, i, name)
		if !strings.Contains(first, want) {
			t.Errorf("missing canonical key declaration %s", want)
		}
	}

	// And the canonical document still round-trips.
	g2, err := DecodeString(first)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 1 {
		t.Fatal("round-trip lost elements")
	}
	id, _ := g2.NodeByName("a")
	if v, _ := g2.Node(id).Attrs.Float("zeta"); v != 1 {
		t.Errorf("round-trip zeta = %v, want 1", v)
	}
}
