package graphml

import (
	"math/rand"
	"strings"
	"testing"

	"netembed/internal/graph"
)

const sample = `<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d0" for="node" attr.name="osType" attr.type="string"/>
  <key id="d1" for="node" attr.name="cpu" attr.type="double"/>
  <key id="d2" for="edge" attr.name="avgDelay" attr.type="double"/>
  <key id="d3" for="edge" attr.name="up" attr.type="boolean"/>
  <graph id="G" edgedefault="undirected">
    <node id="a">
      <data key="d0">linux</data>
      <data key="d1">4</data>
    </node>
    <node id="b">
      <data key="d0">freebsd</data>
    </node>
    <node id="c"/>
    <edge source="a" target="b">
      <data key="d2">12.5</data>
      <data key="d3">true</data>
    </edge>
    <edge source="b" target="c">
      <data key="d2">7</data>
    </edge>
  </graph>
</graphml>
`

func TestDecodeSample(t *testing.T) {
	g, err := DecodeString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Error("sample should be undirected")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("decoded %v", g)
	}
	a, ok := g.NodeByName("a")
	if !ok {
		t.Fatal("node a missing")
	}
	if os, _ := g.Node(a).Attrs.Text("osType"); os != "linux" {
		t.Errorf("a.osType = %q", os)
	}
	if cpu, _ := g.Node(a).Attrs.Float("cpu"); cpu != 4 {
		t.Errorf("a.cpu = %v", cpu)
	}
	b, _ := g.NodeByName("b")
	e, ok := g.EdgeBetween(a, b)
	if !ok {
		t.Fatal("edge a-b missing")
	}
	if d, _ := g.Edge(e).Attrs.Float("avgDelay"); d != 12.5 {
		t.Errorf("a-b avgDelay = %v", d)
	}
	if up, ok := g.Edge(e).Attrs.Get("up").Truth(); !ok || !up {
		t.Error("a-b up != true")
	}
}

func TestDecodeDirectedAndDefaults(t *testing.T) {
	src := `<graphml>
  <key id="k" for="edge" attr.name="bw" attr.type="double"><default>100</default></key>
  <graph edgedefault="directed">
    <node id="x"/><node id="y"/>
    <edge source="x" target="y"/>
    <edge source="y" target="x"><data key="k">55</data></edge>
  </graph>
</graphml>`
	g, err := DecodeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Error("edgedefault=directed ignored")
	}
	x, _ := g.NodeByName("x")
	y, _ := g.NodeByName("y")
	e1, _ := g.EdgeBetween(x, y)
	if bw, _ := g.Edge(e1).Attrs.Float("bw"); bw != 100 {
		t.Errorf("default bw = %v, want 100", bw)
	}
	e2, _ := g.EdgeBetween(y, x)
	if bw, _ := g.Edge(e2).Attrs.Float("bw"); bw != 55 {
		t.Errorf("explicit bw = %v, want 55", bw)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no graph", `<graphml></graphml>`, "no <graph>"},
		{"dup node", `<graphml><graph edgedefault="undirected"><node id="a"/><node id="a"/></graph></graphml>`, "duplicate node id"},
		{"missing id", `<graphml><graph edgedefault="undirected"><node/></graph></graphml>`, "node without id"},
		{"unknown key", `<graphml><graph edgedefault="undirected"><node id="a"><data key="zz">1</data></node></graph></graphml>`, "undeclared key"},
		{"unknown endpoint", `<graphml><graph edgedefault="undirected"><node id="a"/><edge source="a" target="zz"/></graph></graphml>`, "unknown node"},
		{"bad edgedefault", `<graphml><graph edgedefault="mixed"></graph></graphml>`, "edgedefault"},
		{"bad number", `<graphml><key id="k" for="node" attr.name="n" attr.type="double"/><graph edgedefault="undirected"><node id="a"><data key="k">xyz</data></node></graph></graphml>`, "bad number"},
		{"bad bool", `<graphml><key id="k" for="node" attr.name="n" attr.type="boolean"/><graph edgedefault="undirected"><node id="a"><data key="k">maybe</data></node></graph></graphml>`, "bad boolean"},
		{"bad type", `<graphml><key id="k" for="node" attr.name="n" attr.type="complex"/><graph edgedefault="undirected"><node id="a"><data key="k">1</data></node></graph></graphml>`, "unsupported attr.type"},
		{"self loop", `<graphml><graph edgedefault="undirected"><node id="a"/><edge source="a" target="a"/></graph></graphml>`, "self-loop"},
		{"not xml", `garbage`, "graphml"},
	}
	for _, c := range cases {
		_, err := DecodeString(c.src)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error with %q", c.name, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error = %q, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func buildRandomGraph(seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(r.Intn(2) == 0)
	n := 2 + r.Intn(20)
	oses := []string{"linux", "freebsd", "plan9"}
	for i := 0; i < n; i++ {
		attrs := graph.Attrs{}.
			SetNum("cpu", float64(1+r.Intn(8))).
			SetStr("osType", oses[r.Intn(len(oses))]).
			SetBool("up", r.Intn(2) == 0)
		g.AddNode("", attrs)
	}
	for i := 0; i < 3*n; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		attrs := graph.Attrs{}.
			SetNum("avgDelay", float64(r.Intn(300))+0.5).
			SetNum("minDelay", float64(r.Intn(50)))
		g.AddEdge(u, v, attrs)
	}
	return g
}

func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		orig := buildRandomGraph(seed)
		text, err := EncodeString(orig)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeString(text)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, text)
		}
		if got.Directed() != orig.Directed() {
			t.Fatalf("seed %d: direction flipped", seed)
		}
		if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() {
			t.Fatalf("seed %d: size mismatch: %v vs %v", seed, got, orig)
		}
		for i := 0; i < orig.NumNodes(); i++ {
			id := graph.NodeID(i)
			name := orig.Node(id).Name
			gid, ok := got.NodeByName(name)
			if !ok {
				t.Fatalf("seed %d: node %q lost", seed, name)
			}
			if !attrsEqual(orig.Node(id).Attrs, got.Node(gid).Attrs) {
				t.Fatalf("seed %d: node %q attrs %v != %v", seed, name, orig.Node(id).Attrs, got.Node(gid).Attrs)
			}
		}
		for i := 0; i < orig.NumEdges(); i++ {
			e := orig.Edge(graph.EdgeID(i))
			gu, _ := got.NodeByName(orig.Node(e.From).Name)
			gv, _ := got.NodeByName(orig.Node(e.To).Name)
			ge, ok := got.EdgeBetween(gu, gv)
			if !ok {
				t.Fatalf("seed %d: edge %d lost", seed, i)
			}
			if !attrsEqual(e.Attrs, got.Edge(ge).Attrs) {
				t.Fatalf("seed %d: edge attrs mismatch", seed)
			}
		}
	}
}

func attrsEqual(a, b graph.Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !v.Equal(b.Get(k)) {
			return false
		}
	}
	return true
}

func TestEncodeRejectsMixedKinds(t *testing.T) {
	g := graph.NewUndirected()
	g.AddNode("a", graph.Attrs{}.SetNum("attr", 1))
	g.AddNode("b", graph.Attrs{}.SetStr("attr", "one"))
	if _, err := EncodeString(g); err == nil || !strings.Contains(err.Error(), "mixed kinds") {
		t.Errorf("mixed kinds not rejected: %v", err)
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	g := graph.NewUndirected()
	text, err := EncodeString(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Errorf("empty graph round-trip = %v", got)
	}
}
