package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/trace"
)

func testHost(t testing.TB, sites int, seed int64) *graph.Graph {
	t.Helper()
	return trace.SyntheticPlanetLab(trace.Config{Sites: sites}, rand.New(rand.NewSource(seed)))
}

func TestRunBasics(t *testing.T) {
	host := testHost(t, 40, 1)
	m, err := Run(host, Config{
		Requests:         60,
		MeanInterarrival: time.Minute,
		MeanHolding:      20 * time.Minute,
		Seed:             7,
		Timeout:          5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 60 || len(m.Events) != 60 {
		t.Fatalf("requests = %d events = %d", m.Requests, len(m.Events))
	}
	if m.Accepted+m.Rejected != m.Requests {
		t.Errorf("accepted %d + rejected %d != %d", m.Accepted, m.Rejected, m.Requests)
	}
	if m.AcceptanceRatio < 0.4 {
		t.Errorf("acceptance ratio %.2f unexpectedly low for a light load", m.AcceptanceRatio)
	}
	if m.PeakReserved == 0 {
		t.Error("no resources were ever reserved")
	}
	if m.SearchTime.N != 60 {
		t.Errorf("search time samples = %d", m.SearchTime.N)
	}
	// Arrival times strictly increase.
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Arrival <= m.Events[i-1].Arrival {
			t.Fatal("virtual arrivals not increasing")
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	host := testHost(t, 30, 2)
	cfg := Config{Requests: 30, Seed: 11}
	a, err := Run(host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || a.PeakReserved != b.PeakReserved {
		t.Errorf("same seed diverged: %d/%d vs %d/%d",
			a.Accepted, a.PeakReserved, b.Accepted, b.PeakReserved)
	}
	for i := range a.Events {
		if a.Events[i].Accepted != b.Events[i].Accepted {
			t.Fatalf("event %d outcome diverged", i)
		}
	}
}

func TestContentionLowersAcceptance(t *testing.T) {
	host := testHost(t, 25, 3)
	light, err := Run(host, Config{
		Requests:         50,
		MeanInterarrival: time.Hour, // leases expire long before the next arrival
		MeanHolding:      time.Minute,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(host, Config{
		Requests:         50,
		MeanInterarrival: time.Second, // everything overlaps
		MeanHolding:      24 * time.Hour,
		QueryNodesMin:    4,
		QueryNodesMax:    8,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.AcceptanceRatio >= light.AcceptanceRatio {
		t.Errorf("heavy load acceptance %.2f >= light %.2f",
			heavy.AcceptanceRatio, light.AcceptanceRatio)
	}
	if heavy.PeakReserved <= light.PeakReserved {
		t.Errorf("heavy peak %d <= light peak %d", heavy.PeakReserved, light.PeakReserved)
	}
	// Under the saturating load most of the host ends up reserved.
	if heavy.PeakReserved < host.NumNodes()/2 {
		t.Errorf("heavy peak %d never saturated the %d-node host", heavy.PeakReserved, host.NumNodes())
	}
}

func TestLeaseExpiryFreesCapacity(t *testing.T) {
	host := testHost(t, 25, 4)
	// Holding time much shorter than interarrival: each request sees an
	// empty ledger, so acceptance should be near-perfect and reservations
	// never accumulate.
	m, err := Run(host, Config{
		Requests:         40,
		MeanInterarrival: 2 * time.Hour,
		MeanHolding:      time.Minute,
		QueryNodesMin:    3,
		QueryNodesMax:    5,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.AcceptanceRatio < 0.9 {
		t.Errorf("acceptance %.2f with no contention", m.AcceptanceRatio)
	}
	if m.PeakReserved > 10 {
		t.Errorf("peak reserved %d despite immediate expiry", m.PeakReserved)
	}
}

func TestRunAlgorithms(t *testing.T) {
	host := testHost(t, 30, 6)
	for _, algo := range []service.Algorithm{service.AlgoECF, service.AlgoRWB, service.AlgoLNS} {
		m, err := Run(host, Config{Requests: 15, Algorithm: algo, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if m.Accepted == 0 {
			t.Errorf("%s accepted nothing", algo)
		}
	}
}

func TestReport(t *testing.T) {
	host := testHost(t, 25, 7)
	m, err := Run(host, Config{Requests: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.Report(&buf)
	out := buf.String()
	for _, want := range []string{"requests:", "accepted:", "peak reserved:", "search time"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
