// Package sim replays a synthetic stream of embedding requests against
// the NETEMBED service with virtual time: queries arrive at random
// intervals, hold their hosting resources for random durations (windowed
// leases), and depart. The simulator reports the acceptance ratio and
// resource utilization over time — the standard long-run evaluation of a
// virtual-network-embedding service, and the natural companion to the
// paper's §VIII integrated mapping-and-scheduling discussion: it is how a
// deployed NETEMBED would actually be judged.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"netembed/internal/graph"
	"netembed/internal/service"
	"netembed/internal/stats"
	"netembed/internal/topo"
)

// Config shapes a simulation run.
type Config struct {
	// Requests is how many embedding requests to replay (default 200).
	Requests int
	// MeanInterarrival is the mean virtual time between arrivals
	// (exponential; default 2m).
	MeanInterarrival time.Duration
	// MeanHolding is the mean virtual lease duration (exponential;
	// default 30m).
	MeanHolding time.Duration
	// QueryNodesMin/Max bound the size of sampled queries (defaults 3/8).
	QueryNodesMin, QueryNodesMax int
	// Slack widens the sampled delay windows (default 0.3: the workload
	// should be individually easy so rejections measure contention).
	Slack float64
	// Algorithm selects the search strategy (default lns: first-match
	// speed is what an online service needs).
	Algorithm service.Algorithm
	// Timeout bounds each embedding search (default 5s).
	Timeout time.Duration
	// Seed drives arrivals, holds and query sampling.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 2 * time.Minute
	}
	if c.MeanHolding == 0 {
		c.MeanHolding = 30 * time.Minute
	}
	if c.QueryNodesMin == 0 {
		c.QueryNodesMin = 3
	}
	if c.QueryNodesMax == 0 {
		c.QueryNodesMax = 8
	}
	if c.QueryNodesMax < c.QueryNodesMin {
		c.QueryNodesMax = c.QueryNodesMin
	}
	if c.Slack == 0 {
		c.Slack = 0.3
	}
	if c.Algorithm == "" {
		c.Algorithm = service.AlgoLNS
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
}

// Event records one request's outcome.
type Event struct {
	// Arrival is the virtual arrival time offset from the run start.
	Arrival time.Duration
	// Nodes is the query size.
	Nodes int
	// Accepted reports whether an embedding was found and leased.
	Accepted bool
	// Reserved counts hosting nodes under lease right after this event.
	Reserved int
	// SearchTime is the real (not virtual) time the search took.
	SearchTime time.Duration
}

// Metrics summarizes a run.
type Metrics struct {
	Requests     int
	Accepted     int
	Rejected     int
	PeakReserved int
	// AcceptanceRatio is Accepted/Requests.
	AcceptanceRatio float64
	// MeanReserved is the average number of leased hosting nodes observed
	// at arrival instants (a utilization proxy).
	MeanReserved float64
	// SearchTime summarizes real per-request search times (ms).
	SearchTime stats.Summary
	Events     []Event
}

// Run replays the workload against a fresh service over the given hosting
// network. The hosting network must carry the minDelay/maxDelay attributes
// the standard window constraint uses (the synthetic PlanetLab trace and
// the BRITE generator both qualify).
func Run(host *graph.Graph, cfg Config) (*Metrics, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	svc := service.New(service.NewModel(host), service.Config{DefaultTimeout: cfg.Timeout})

	// Virtual clock driving lease expiry.
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	svc.Ledger().SetClock(func() time.Time { return now })

	m := &Metrics{Requests: cfg.Requests}
	var reservedSamples []float64
	var searchMs []float64
	var elapsed time.Duration

	for i := 0; i < cfg.Requests; i++ {
		// Advance virtual time to the next arrival; expired leases fall
		// out of the reservation checks automatically.
		step := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		elapsed += step
		now = now.Add(step)

		nodes := cfg.QueryNodesMin + rng.Intn(cfg.QueryNodesMax-cfg.QueryNodesMin+1)
		q, err := sampleQuery(host, nodes, cfg.Slack, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: request %d: %w", i, err)
		}
		start := time.Now()
		resp, err := svc.Embed(service.Request{
			Query:           q,
			EdgeConstraint:  "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
			Algorithm:       cfg.Algorithm,
			MaxResults:      1,
			Seed:            rng.Int63(),
			ExcludeReserved: true,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: request %d: %w", i, err)
		}
		searchTime := time.Since(start)
		searchMs = append(searchMs, float64(searchTime)/float64(time.Millisecond))

		ev := Event{Arrival: elapsed, Nodes: nodes, SearchTime: searchTime}
		if len(resp.Mappings) > 0 {
			hold := time.Duration(rng.ExpFloat64() * float64(cfg.MeanHolding))
			if _, err := svc.Ledger().AllocateWindow(resp.Mappings[0], now, now.Add(hold)); err == nil {
				ev.Accepted = true
				m.Accepted++
			}
		}
		if !ev.Accepted {
			m.Rejected++
		}
		ev.Reserved = len(svc.Ledger().ReservedNodesAt(now))
		if ev.Reserved > m.PeakReserved {
			m.PeakReserved = ev.Reserved
		}
		reservedSamples = append(reservedSamples, float64(ev.Reserved))
		m.Events = append(m.Events, ev)
	}

	m.AcceptanceRatio = float64(m.Accepted) / float64(m.Requests)
	m.MeanReserved = stats.Summarize(reservedSamples).Mean
	m.SearchTime = stats.Summarize(searchMs)
	return m, nil
}

// sampleQuery draws a random connected subgraph query with widened delay
// windows (individually feasible by construction).
func sampleQuery(host *graph.Graph, nodes int, slack float64, rng *rand.Rand) (*graph.Graph, error) {
	q, _, err := topo.Subgraph(host, nodes, 2*nodes, rng)
	if err != nil {
		return nil, err
	}
	topo.WidenDelayWindows(q, slack)
	return q, nil
}

// Report renders the metrics as text.
func (m *Metrics) Report(w io.Writer) {
	fmt.Fprintf(w, "requests:          %d\n", m.Requests)
	fmt.Fprintf(w, "accepted:          %d (%.1f%%)\n", m.Accepted, 100*m.AcceptanceRatio)
	fmt.Fprintf(w, "rejected:          %d\n", m.Rejected)
	fmt.Fprintf(w, "peak reserved:     %d hosting nodes\n", m.PeakReserved)
	fmt.Fprintf(w, "mean reserved:     %.1f hosting nodes\n", m.MeanReserved)
	fmt.Fprintf(w, "search time (ms):  %s\n", m.SearchTime)
}
