// Benchmarks regenerating a representative point of every figure in the
// paper's evaluation (§VII). The full sweeps behind each figure live in
// internal/exp and run via cmd/experiments; these testing.B benches pin
// one mid-size configuration per figure so `go test -bench=. -benchmem`
// tracks the performance of every experiment's code path.
//
// Hosting networks are scaled below the paper's sizes to keep a full
// bench run in minutes; cmd/experiments reproduces the full-size curves.
package netembed_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netembed"
	"netembed/internal/baseline"
	"netembed/internal/coords"
	"netembed/internal/core"
	"netembed/internal/exp"
	"netembed/internal/graphml"
	"netembed/internal/service"
	"netembed/internal/service/httpapi"
	"netembed/internal/sim"
	"netembed/internal/topo"
	"netembed/internal/trace"
)

// Shared fixtures, built once.
var (
	plabOnce sync.Once
	plabHost *netembed.Graph

	briteOnce sync.Once
	briteG    *netembed.Graph
)

func planetLab(b *testing.B) *netembed.Graph {
	b.Helper()
	plabOnce.Do(func() {
		plabHost = trace.SyntheticPlanetLab(trace.Config{Sites: 120}, rand.New(rand.NewSource(1)))
	})
	return plabHost
}

func brite(b *testing.B) *netembed.Graph {
	b.Helper()
	briteOnce.Do(func() {
		g, err := topo.Brite(topo.BriteConfig{N: 500, TargetEdges: 1010}, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		briteG = g
	})
	return briteG
}

var delayWindow = netembed.MustCompile(
	"rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay")

var avgWindow = netembed.MustCompile(
	"rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")

// subgraphProblem plants a feasible query of n nodes on the host with a
// ±10% delay-window slack.
func subgraphProblem(b *testing.B, host *netembed.Graph, n int, seed int64) *netembed.Problem {
	b.Helper()
	return subgraphProblemSlack(b, host, n, seed, 0.1)
}

// subgraphProblemSlack is subgraphProblem with an explicit window slack.
// Slack 0 (exact measured windows) is what the full harness uses on the
// sparse BRITE hosts, where even ±10% admits an astronomical solution set.
func subgraphProblemSlack(b *testing.B, host *netembed.Graph, n int, seed int64, slack float64) *netembed.Problem {
	b.Helper()
	q, _, err := topo.Subgraph(host, n, 2*n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	topo.WidenDelayWindows(q, slack)
	p, err := netembed.NewProblem(q, host, delayWindow, nil)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// countAll runs an algorithm to exhaustion, counting solutions without
// retaining them.
func countAll(algo string, p *netembed.Problem, opt netembed.Options) int64 {
	var n int64
	opt.OnSolution = func(netembed.Mapping) bool { n++; return true }
	switch algo {
	case "ECF":
		core.ECF(p, opt)
	case "RWB":
		core.RWB(p, opt)
	case "LNS":
		core.LNS(p, opt)
	}
	return n
}

// --- Fig 8: per-algorithm time on PlanetLab subgraph queries ---

func BenchmarkFig08_ECF_PlanetLab(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 30, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if countAll("ECF", p, netembed.Options{}) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

func BenchmarkFig08_RWB_PlanetLab(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 30, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RWB(p, netembed.Options{Seed: int64(i)})
		if len(res.Solutions) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

func BenchmarkFig08_LNS_PlanetLab(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 30, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if countAll("LNS", p, netembed.Options{}) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

// --- Fig 9: cross-algorithm comparison (all matches / first match) ---

func BenchmarkFig09_AllMatches(b *testing.B) {
	host := planetLab(b)
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			p := subgraphProblem(b, host, 24, 4)
			opt := netembed.Options{}
			if algo == "RWB" {
				opt.MaxSolutions = 1 << 30 // run RWB to exhaustion too
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				countAll(algo, p, opt)
			}
		})
	}
}

func BenchmarkFig09_FirstMatch(b *testing.B) {
	host := planetLab(b)
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			p := subgraphProblem(b, host, 24, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if countAll(algo, p, netembed.Options{MaxSolutions: 1, Seed: int64(i)}) == 0 {
					b.Fatal("planted query not found")
				}
			}
		})
	}
}

// --- Fig 10: infeasible (no-match) queries ---

func BenchmarkFig10_NoMatch(b *testing.B) {
	host := planetLab(b)
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			q, _, err := topo.Subgraph(host, 24, 48, rand.New(rand.NewSource(5)))
			if err != nil {
				b.Fatal(err)
			}
			topo.WidenDelayWindows(q, 0.1)
			topo.MakeInfeasible(q, 3, rand.New(rand.NewSource(6)))
			p, err := netembed.NewProblem(q, host, delayWindow, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if countAll(algo, p, netembed.Options{}) != 0 {
					b.Fatal("infeasible query matched")
				}
			}
		})
	}
}

// --- Figs 11/12: BRITE hosts ---

func BenchmarkFig11_Brite(b *testing.B) {
	// Exact windows (slack 0), matching the full harness: on power-law
	// BRITE hosts a ±10% slack lets every low-degree spur re-seat on
	// dozens of alternates and the all-matches enumeration never ends.
	// The timeout is a defensive bound only; runs complete well under it.
	p := subgraphProblemSlack(b, brite(b), 100, 7, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if countAll("ECF", p, netembed.Options{Timeout: time.Minute}) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

func BenchmarkFig12_BriteFirst(b *testing.B) {
	host := brite(b)
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			p := subgraphProblemSlack(b, host, 100, 7, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt := netembed.Options{MaxSolutions: 1, Seed: int64(i), Timeout: 3 * time.Minute}
				if countAll(algo, p, opt) == 0 {
					b.Fatal("planted query not found")
				}
			}
		})
	}
}

// --- Fig 13: clique queries ---

func BenchmarkFig13_CliqueAll(b *testing.B) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 40}, rand.New(rand.NewSource(8)))
	q := topo.Clique(3)
	topo.SetDelayWindow(q, 10, 100)
	p, err := netembed.NewProblem(q, host, avgWindow, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		countAll("ECF", p, netembed.Options{})
	}
}

func BenchmarkFig13_CliqueFirst(b *testing.B) {
	host := planetLab(b)
	q := topo.Clique(6)
	topo.SetDelayWindow(q, 10, 100)
	p, err := netembed.NewProblem(q, host, avgWindow, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				countAll(algo, p, netembed.Options{MaxSolutions: 1, Seed: int64(i), Timeout: 30 * time.Second})
			}
		})
	}
}

// --- Fig 14: composite queries ---

func benchComposite(b *testing.B, irregular bool) {
	host := planetLab(b)
	q, err := topo.Composite(topo.KindStar, 4, topo.KindStar, 5)
	if err != nil {
		b.Fatal(err)
	}
	if irregular {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < q.NumEdges(); i++ {
			width := 50 + rng.Float64()*60
			lo := 25 + rng.Float64()*(150-width)
			q.Edge(netembed.EdgeID(i)).Attrs = q.Edge(netembed.EdgeID(i)).Attrs.
				SetNum("minDelay", lo).SetNum("maxDelay", lo+width)
		}
	} else {
		for i := 0; i < q.NumEdges(); i++ {
			e := q.Edge(netembed.EdgeID(i))
			if lv, _ := e.Attrs.Text(topo.LevelAttr); lv == "root" {
				e.Attrs = e.Attrs.SetNum("minDelay", 75).SetNum("maxDelay", 350)
			} else {
				e.Attrs = e.Attrs.SetNum("minDelay", 1).SetNum("maxDelay", 75)
			}
		}
	}
	p, err := netembed.NewProblem(q, host, avgWindow, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []string{"ECF", "RWB", "LNS"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				countAll(algo, p, netembed.Options{MaxSolutions: 1, Seed: int64(i), Timeout: 30 * time.Second})
			}
		})
	}
}

func BenchmarkFig14_CompositeRegular(b *testing.B)   { benchComposite(b, false) }
func BenchmarkFig14_CompositeIrregular(b *testing.B) { benchComposite(b, true) }

// --- Fig 15: result-quality classification under a timeout ---

func BenchmarkFig15_Outcomes(b *testing.B) {
	host := planetLab(b)
	p := subgraphProblem(b, host, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.ECF(p, netembed.Options{Timeout: 100 * time.Millisecond})
		_ = res.Status // complete / partial / inconclusive
	}
}

// --- §VII-F: baselines ---

func BenchmarkBaseline_NaiveDFS(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 12, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := baseline.NaiveDFS(p, baseline.NaiveConfig{MaxSolutions: 1})
		if len(res.Solutions) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

func BenchmarkBaseline_Annealing(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Annealer(p, baseline.AnnealerConfig{Seed: int64(i), Steps: 50_000, Restarts: 1})
	}
}

func BenchmarkBaseline_Genetic(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Genetic(p, baseline.GeneticConfig{Seed: int64(i), Generations: 100})
	}
}

func BenchmarkBaseline_Sword(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 12, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Sword(p, baseline.SwordConfig{})
	}
}

func BenchmarkBaseline_ZhuAmmar(b *testing.B) {
	p := subgraphProblem(b, planetLab(b), 12, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ZhuAmmar(p, baseline.ZhuAmmarConfig{})
	}
}

func BenchmarkConsolidate(b *testing.B) {
	// A private host (not the shared fixture — capacities are stamped on
	// its nodes) with packing headroom for the many-to-one search.
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 60}, rand.New(rand.NewSource(33)))
	for i := 0; i < host.NumNodes(); i++ {
		host.Node(netembed.NodeID(i)).Attrs = host.Node(netembed.NodeID(i)).Attrs.SetNum("capacity", 2)
	}
	p := subgraphProblem(b, host, 16, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Consolidate(p, netembed.Options{MaxSolutions: 1, Timeout: time.Minute}, core.ConsolidateOptions{})
		if len(res.Solutions) == 0 {
			b.Fatal("planted query not found")
		}
	}
}

// --- Ablations: the design knobs DESIGN.md calls out ---

func BenchmarkAblation_Ordering(b *testing.B) {
	// The query is pinned at 14 nodes: it is the largest size at which
	// the deliberately bad orderings still terminate in seconds (at 16+
	// OrderDescending exceeds minutes per run, and at 24 OrderNatural
	// does too — the full blow-up is quantified by `experiments ablate`,
	// which runs under a timeout). The defensive Timeout never fires at
	// this size.
	host := planetLab(b)
	for _, v := range []struct {
		name string
		opt  netembed.Options
	}{
		{"lemma1-ascending", netembed.Options{}},
		{"natural", netembed.Options{Order: core.OrderNatural}},
		{"descending", netembed.Options{Order: core.OrderDescending}},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := subgraphProblem(b, host, 14, 14)
			v.opt.Timeout = 2 * time.Minute
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if countAll("ECF", p, v.opt) == 0 {
					b.Fatal("planted query not found")
				}
			}
		})
	}
}

func BenchmarkAblation_Filters(b *testing.B) {
	host := planetLab(b)
	for _, v := range []struct {
		name string
		opt  netembed.Options
	}{
		{"tight-root", netembed.Options{}},
		{"loose-root", netembed.Options{LooseRoot: true}},
		{"no-degree-filter", netembed.Options{NoDegreeFilter: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := subgraphProblem(b, host, 24, 14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				countAll("ECF", p, v.opt)
			}
		})
	}
}

func BenchmarkAblation_DynamicOrdering(b *testing.B) {
	host := planetLab(b)
	for _, v := range []struct {
		name string
		run  func(p *netembed.Problem) *netembed.Result
	}{
		{"static-connected", func(p *netembed.Problem) *netembed.Result {
			return core.ECF(p, netembed.Options{})
		}},
		{"dynamic-mrv", func(p *netembed.Problem) *netembed.Result {
			return core.DynamicECF(p, netembed.Options{})
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := subgraphProblem(b, host, 24, 14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.run(p)
			}
		})
	}
}

func BenchmarkServiceSimulation(b *testing.B) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 50}, rand.New(rand.NewSource(21)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(host, sim.Config{Requests: 25, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ParallelFilterBuild(b *testing.B) {
	host := planetLab(b)
	for _, workers := range []int{0, 2, 4, 8} {
		name := map[int]string{0: "serial", 2: "w2", 4: "w4", 8: "w8"}[workers]
		b.Run(name, func(b *testing.B) {
			p := subgraphProblem(b, host, 40, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.BuildFilters(p, &netembed.Options{Workers: workers})
			}
		})
	}
}

func BenchmarkAblation_ParallelECF(b *testing.B) {
	host := planetLab(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			p := subgraphProblem(b, host, 24, 14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ParallelECF(p, netembed.Options{Workers: workers, MaxSolutions: 1 << 20})
			}
		})
	}
}

// --- Service path: end-to-end request handling ---

func BenchmarkServiceEmbed(b *testing.B) {
	host := planetLab(b)
	model := netembed.NewModel(host)
	svc := netembed.NewService(model, netembed.ServiceConfig{})
	q, _, err := topo.Subgraph(host, 16, 32, rand.New(rand.NewSource(15)))
	if err != nil {
		b.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Embed(netembed.Request{
			Query:          q,
			EdgeConstraint: "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
			Algorithm:      netembed.AlgoLNS,
			MaxResults:     1,
		})
		if err != nil || len(resp.Mappings) == 0 {
			b.Fatal("service embed failed")
		}
	}
}

// BenchmarkEngineThroughput measures end-to-end jobs/sec through the
// asynchronous job engine — submit, queue, worker search, result — at
// worker counts 1/4/16, cold (every job a distinct query fingerprint,
// full search) versus warm (identical query, served from the
// model-versioned result cache). The gap between the two is the cache's
// O(1)-reuse win; scaling across worker counts is the pool's win.
func BenchmarkEngineThroughput(b *testing.B) {
	host := planetLab(b)
	q, _, err := topo.Subgraph(host, 8, 12, rand.New(rand.NewSource(15)))
	if err != nil {
		b.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)
	req := netembed.Request{
		Query:          q,
		EdgeConstraint: "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay",
		MaxResults:     1,
	}
	for _, workers := range []int{1, 4, 16} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				svc := netembed.NewService(netembed.NewModel(host), netembed.ServiceConfig{})
				eng := netembed.NewEngine(svc, netembed.EngineConfig{
					Workers:    workers,
					QueueDepth: 4096,
				})
				defer eng.Close(context.Background())
				if mode == "warm" {
					// Fill the cache line every iteration will hit.
					if _, err := eng.SubmitWait(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
				var seeds atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						r := req
						if mode == "cold" {
							// A fresh seed gives each job its own cache
							// fingerprint, forcing a full search.
							r.Seed = seeds.Add(1)
						}
						if _, err := eng.SubmitWait(context.Background(), r); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// --- Network coordinates: the open-network model completion path ---

func BenchmarkCoordsEmbed(b *testing.B) {
	host := planetLab(b)
	rng := rand.New(rand.NewSource(31))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coords.Embed(host, coords.EmbedConfig{Rounds: 16}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelComplete(b *testing.B) {
	host := trace.SyntheticPlanetLab(trace.Config{Sites: 60}, rand.New(rand.NewSource(32)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := netembed.NewModel(host)
		if _, err := service.Complete(model, service.CompletionConfig{
			Embed: coords.EmbedConfig{Rounds: 16},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Harness smoke: one tiny figure end to end ---

func BenchmarkHarnessFig13Tiny(b *testing.B) {
	cfg := exp.Config{Scale: 0.08, Reps: 1, Timeout: 200 * time.Millisecond, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig13(cfg)
	}
}

// --- Candidate-set representation: sorted slices vs dense bitsets ---
//
// The ECF/RWB hot path is candidate-set intersection; BuildFilters picks
// the row representation adaptively (Options.Repr overrides). These
// benches pin both representations at several host sizes. The Search
// variants run against prebuilt filters — the regime of a service
// re-embedding against a cached model — where the intersection speedup
// shows undiluted; the end-to-end variants include filter construction,
// whose (representation-independent) constraint evaluation dominates on
// edge-dense hosts.

var (
	reprHostOnce sync.Once
	reprHosts    map[int]*netembed.Graph
)

// reprHost returns a dense PlanetLab-style host with the given node count
// — the intersection-heavy regime, where filter rows hold hundreds of
// candidates.
func reprHost(b *testing.B, sites int) *netembed.Graph {
	b.Helper()
	reprHostOnce.Do(func() {
		reprHosts = map[int]*netembed.Graph{}
		for _, n := range []int{128, 512} {
			reprHosts[n] = trace.SyntheticPlanetLab(trace.Config{Sites: n}, rand.New(rand.NewSource(1)))
		}
	})
	g, ok := reprHosts[sites]
	if !ok {
		b.Fatalf("reprHost: no fixture for %d sites (add it to the sync.Once above)", sites)
	}
	return g
}

func reprName(r netembed.Repr) string {
	if r == core.ReprBitset {
		return "bitset"
	}
	return "slice"
}

// countWithFilters enumerates up to cap embeddings over prebuilt filters
// without retaining them.
func countWithFilters(f *netembed.Filters, cap int) int64 {
	var n int64
	opt := netembed.Options{MaxSolutions: cap}
	opt.OnSolution = func(netembed.Mapping) bool { n++; return true }
	core.ECFWithFilters(f, opt)
	return n
}

func BenchmarkRepr_ECF_Search(b *testing.B) {
	for _, sites := range []int{128, 512} {
		host := reprHost(b, sites)
		p := subgraphProblem(b, host, 24, 3)
		for _, repr := range []netembed.Repr{core.ReprSlice, core.ReprBitset} {
			f := core.BuildFilters(p, &netembed.Options{Repr: repr})
			b.Run(fmt.Sprintf("n%d/%s", sites, reprName(repr)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if countWithFilters(f, 500_000) == 0 {
						b.Fatal("planted query not found")
					}
				}
			})
		}
	}
}

func BenchmarkRepr_ECF_EndToEnd(b *testing.B) {
	for _, sites := range []int{128, 512} {
		host := reprHost(b, sites)
		for _, repr := range []netembed.Repr{core.ReprSlice, core.ReprBitset} {
			b.Run(fmt.Sprintf("n%d/%s", sites, reprName(repr)), func(b *testing.B) {
				p := subgraphProblem(b, host, 24, 3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if countAll("ECF", p, netembed.Options{Repr: repr, MaxSolutions: 500_000}) == 0 {
						b.Fatal("planted query not found")
					}
				}
			})
		}
	}
}

func BenchmarkRepr_RWB_Search(b *testing.B) {
	for _, sites := range []int{128, 512} {
		host := reprHost(b, sites)
		p := subgraphProblem(b, host, 24, 3)
		for _, repr := range []netembed.Repr{core.ReprSlice, core.ReprBitset} {
			f := core.BuildFilters(p, &netembed.Options{Repr: repr})
			b.Run(fmt.Sprintf("n%d/%s", sites, reprName(repr)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := core.RWBWithFilters(f, netembed.Options{Seed: int64(i)})
					if len(res.Solutions) == 0 {
						b.Fatal("planted query not found")
					}
				}
			})
		}
	}
}

func BenchmarkRepr_ParallelECF(b *testing.B) {
	for _, sites := range []int{128, 512} {
		host := reprHost(b, sites)
		for _, repr := range []netembed.Repr{core.ReprSlice, core.ReprBitset} {
			b.Run(fmt.Sprintf("n%d/%s", sites, reprName(repr)), func(b *testing.B) {
				p := subgraphProblem(b, host, 24, 3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := core.ParallelECF(p, netembed.Options{Workers: 4, Repr: repr, MaxSolutions: 100_000})
					if len(res.Solutions) == 0 {
						b.Fatal("planted query not found")
					}
				}
			})
		}
	}
}

// BenchmarkIndexDelta is the tentpole measurement of PR 3: the cost of
// going from "a monitor delta landed" to "queryable filters for the next
// search" on a 512-node hosting network. The delta-apply variant patches
// the persistent capability index copy-on-write and builds the filters
// from strata and adjacency bitsets; the full-rebuild variant is the
// pre-index world — every publish forces BuildFilters to rescan the
// host. The acceptance bar is delta-apply ≥ 5x faster.
func BenchmarkIndexDelta(b *testing.B) {
	host := reprHost(b, 512)
	q, _, err := topo.Subgraph(host, 16, 32, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	// Topology-only query: the regime where the filter tables are pure
	// structure and the index fast path applies end to end.
	newProblem := func(g *netembed.Graph) *netembed.Problem {
		p, err := netembed.NewProblem(q, g, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	delta := func(i int) *netembed.Delta {
		return &netembed.Delta{SetNodeAttrs: []netembed.NodeAttrUpdate{{
			Node: host.Node(netembed.NodeID(i % host.NumNodes())).Name,
			Set:  netembed.Attrs{}.SetNum("slots", float64(1+i%4)),
		}}}
	}

	b.Run("delta-apply", func(b *testing.B) {
		model := netembed.NewModel(host)
		model.EnableIndex(netembed.IndexConfig{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := model.Apply(delta(i)); err != nil {
				b.Fatal(err)
			}
			g, idx, _ := model.SnapshotIndexed()
			f := core.BuildFilters(newProblem(g), &netembed.Options{Index: idx})
			if len(f.Base(0)) == 0 {
				b.Fatal("empty base candidates")
			}
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		model := netembed.NewModel(host)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := model.Apply(delta(i)); err != nil {
				b.Fatal(err)
			}
			g, _ := model.Snapshot()
			f := core.BuildFilters(newProblem(g), &netembed.Options{})
			if len(f.Base(0)) == 0 {
				b.Fatal("empty base candidates")
			}
		}
	})
}

// BenchmarkBatchEmbed measures the batch endpoint's amortization: 16
// first-match queries answered via one EmbedBatch snapshot versus 16
// independent Embed calls, with the capability index on and off.
func BenchmarkBatchEmbed(b *testing.B) {
	host := reprHost(b, 128)
	reqs := make([]netembed.Request, 16)
	for i := range reqs {
		q, _, err := topo.Subgraph(host, 8+i%5, 16, rand.New(rand.NewSource(int64(40+i))))
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = netembed.Request{Query: q, MaxResults: 1}
	}
	for _, indexed := range []bool{true, false} {
		model := netembed.NewModel(host)
		if indexed {
			model.EnableIndex(netembed.IndexConfig{})
		}
		svc := netembed.NewService(model, netembed.ServiceConfig{})
		run := func(batch bool) func(*testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if batch {
						results, _ := svc.EmbedBatch(reqs)
						for _, r := range results {
							if r.Err != nil {
								b.Fatal(r.Err)
							}
						}
					} else {
						for _, req := range reqs {
							if _, err := svc.Embed(req); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
		}
		b.Run(fmt.Sprintf("indexed=%v/batch", indexed), run(true))
		b.Run(fmt.Sprintf("indexed=%v/sequential", indexed), run(false))
	}
}

// --- Search engine: forward checking + CBJ vs the chronological oracle ---
//
// BenchmarkSearch_FC_vs_Chrono is the tentpole measurement of the FC-CBJ
// engine rebuild. Three instances, each run under both engines against
// identical prebuilt filters:
//
//   - dense512/subgraph: a 24-node planted query on the 512-node dense
//     host — the deep bottom-heavy tree where the chronological searcher
//     re-intersects every earlier neighbor's row per visit and forward
//     checking pays one AND per future neighbor instead.
//   - dense512/clique: a 7-clique on the same host — the complete query
//     graph is the FC engine's structural worst case (every level
//     re-prunes every future domain, nothing amortizes), so this
//     sub-benchmark pins the expected engine *parity* and guards the
//     maintenance overhead from regressing.
//   - nomatch512: topo.BackjumpAdversary on a 512-node host — a jointly
//     infeasible query whose conflict involves only the root and a
//     pendant triangle; conflict-directed backjumping vaults the branchy
//     middle levels the oracle must re-enumerate per root.
//
// The acceptance bars: fc ≥1.5x faster than chrono on the dense-host
// subgraph workload, ≥2x on nomatch512, and no worse than parity on
// the clique worst case (measured: ≈2x, ≈14x, ≈1.03x — see README and
// bench/BENCH_pr4_baseline.json).
func BenchmarkSearch_FC_vs_Chrono(b *testing.B) {
	engines := []struct {
		name string
		eng  netembed.SearchEngine
	}{
		{"chrono", core.SearchChrono},
		{"fc", core.SearchFC},
	}

	runWithFilters := func(b *testing.B, f *netembed.Filters, opt netembed.Options, wantSolutions bool) {
		b.Helper()
		var n int64
		opt.OnSolution = func(netembed.Mapping) bool { n++; return true }
		for i := 0; i < b.N; i++ {
			n = 0
			core.ECFWithFilters(f, opt)
			if wantSolutions && n == 0 {
				b.Fatal("planted query not found")
			}
			if !wantSolutions && n != 0 {
				b.Fatal("infeasible query matched")
			}
		}
	}

	host := reprHost(b, 512)

	b.Run("dense512/subgraph", func(b *testing.B) {
		p := subgraphProblemSlack(b, host, 24, 3, 0.05)
		f := core.BuildFilters(p, &netembed.Options{})
		for _, e := range engines {
			b.Run(e.name, func(b *testing.B) {
				runWithFilters(b, f, netembed.Options{Engine: e.eng, MaxSolutions: 500_000}, true)
			})
		}
	})

	b.Run("dense512/clique", func(b *testing.B) {
		// A complete query graph is forward checking's structural worst
		// case — every level re-prunes every future domain, so the
		// incremental engine has nothing to amortize and the two engines
		// should track each other. This sub-benchmark pins that parity
		// (and guards the maintenance overhead from regressing); the
		// wins live in subgraph (deep amortization) and nomatch
		// (wipeouts + backjumping).
		q := topo.Clique(7)
		topo.SetDelayWindow(q, 15, 50)
		p, err := netembed.NewProblem(q, host, avgWindow, nil)
		if err != nil {
			b.Fatal(err)
		}
		f := core.BuildFilters(p, &netembed.Options{})
		for _, e := range engines {
			b.Run(e.name, func(b *testing.B) {
				runWithFilters(b, f, netembed.Options{Engine: e.eng, MaxSolutions: 200_000}, true)
			})
		}
	})

	b.Run("nomatch512", func(b *testing.B) {
		// 64+320+64+64 = 512 hosts; the full no-match proof must be
		// produced every iteration. OrderNatural pins the adversarial
		// order (middle chain before the conflict triangle).
		q, g, err := topo.BackjumpAdversary(64, 320, 3)
		if err != nil {
			b.Fatal(err)
		}
		p, err := netembed.NewProblem(q, g, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		f := core.BuildFilters(p, &netembed.Options{})
		for _, e := range engines {
			b.Run(e.name, func(b *testing.B) {
				runWithFilters(b, f, netembed.Options{Engine: e.eng, Order: core.OrderNatural}, false)
			})
		}
	})
}

// BenchmarkPathEmbed_FC_vs_Seed pins the rebuilt path-mode (§VIII
// link-to-path) searcher against the seed-era chronological scan. The
// seed re-runs an exhaustive simple-path DFS for every (candidate,
// assigned neighbor) pair it probes — on the dense 512-site host a
// single fruitless probe walks ~10^5 partial paths — while the FC engine
// prunes candidate domains with the hop-bounded reachability oracle,
// rejects hopeless probes with optimistic metric bounds, and memoizes
// witness lookups per (window class, src, dst), so re-probed pairs cost
// a map hit.
//
//	windowed: multi-hop delay windows, solution enumeration capped —
//	          the service's typical capped path query.
//	nomatch:  a window below the cheapest hosting edge, full no-match
//	          proof (128 sites: the seed's per-probe DFS makes 512
//	          infeasible to benchmark).
func BenchmarkPathEmbed_FC_vs_Seed(b *testing.B) {
	engines := []struct {
		name string
		eng  netembed.SearchEngine
	}{
		{"seed", core.SearchChrono},
		{"fc", core.SearchFC},
	}

	pathQuery := func(n int, lo, hi float64) *netembed.Graph {
		q := netembed.Ring(n)
		topo.SetDelayWindow(q, lo, hi)
		return q
	}
	run := func(b *testing.B, p *netembed.Problem, opt netembed.PathOptions, wantSolutions bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res := core.PathEmbed(p, opt)
			if wantSolutions && len(res.Solutions) == 0 {
				b.Fatal("windowed query found nothing")
			}
			if !wantSolutions && (len(res.Solutions) != 0 || res.Status != core.StatusComplete) {
				b.Fatal("nomatch query must be a definitive no-match")
			}
		}
	}

	b.Run("dense512/windowed", func(b *testing.B) {
		host := reprHost(b, 512)
		// 25..38ms composed avgDelay: satisfiable mostly by 2-hop
		// intra-region compositions, so witnesses take real search.
		p, err := netembed.NewProblem(pathQuery(4, 25, 38), host, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range engines {
			b.Run(e.name, func(b *testing.B) {
				run(b, p, netembed.PathOptions{MaxHops: 2, MaxSolutions: 100, Engine: e.eng}, true)
			})
		}
	})

	b.Run("nomatch128", func(b *testing.B) {
		host := reprHost(b, 128)
		// The synthetic trace's delay floor is 6ms: a 1..3ms window is
		// infeasible at any hop count, and proving it makes the seed DFS
		// every candidate pair while the FC engine's edge-value floor
		// rejects every probe in O(1).
		p, err := netembed.NewProblem(pathQuery(3, 1, 3), host, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range engines {
			b.Run(e.name, func(b *testing.B) {
				run(b, p, netembed.PathOptions{MaxHops: 2, Engine: e.eng}, false)
			})
		}
	})
}

// BenchmarkParallelECF_StealVsStatic pins the work-stealing scheduler
// against PR 1's static first-level sharding on topo.SkewedRing: one
// root candidate owns a combinatorially large subtree while the decoy
// roots die after a shallow probe. Round-robin sharding pins the heavy
// root (plus a few dead decoys) to one worker and the rest of the pool
// idles; stealing redistributes the heavy root's second level.
func BenchmarkParallelECF_StealVsStatic(b *testing.B) {
	q, host := topo.SkewedRing(12, 15, 7)
	seedOnly := netembed.MustCompile("!has(vNode.seed) || has(rNode.seed)")
	p, err := netembed.NewProblem(q, host, delayWindow, seedOnly)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		eng  netembed.SearchEngine
	}{
		{"static", core.SearchChrono},
		{"steal", core.SearchFC},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.ParallelECF(p, netembed.Options{Workers: 4, Engine: v.eng})
				if len(res.Solutions) != 0 || res.Status != core.StatusComplete {
					b.Fatal("skewed instance should be a definitive no-match")
				}
			}
		})
	}
}

// BenchmarkRepair_SeededVsScratch pins the lifecycle re-optimizer's
// core claim on the pinned adversarial instance: after a delta breaks
// one node of a line-3 embedding parked at the top of a 512-node
// substrate's ID space (while opening a fresh eligible pocket at the
// bottom), the LNS destroy/repair search seeded with the old mapping
// both answers faster than a from-scratch re-embed and moves strictly
// fewer nodes (1 versus all 3 — scratch search lands in the low-ID
// pocket). The benchmark fails if either half of that claim breaks.
func BenchmarkRepair_SeededVsScratch(b *testing.B) {
	// Post-delta state of the adversarial host: K_512 where the pod held
	// {500,501,502}, node 501 just lost its membership, and nodes 0..9
	// just gained theirs.
	host := topo.Clique(512)
	pod := func(id int) {
		host.Node(netembed.NodeID(id)).Attrs = host.Node(netembed.NodeID(id)).Attrs.SetNum("pod", 1)
	}
	pod(500)
	pod(502)
	for id := 0; id < 10; id++ {
		pod(id)
	}
	p, err := netembed.NewProblem(topo.Line(3), host, nil, netembed.MustCompile("rNode.pod > 0"))
	if err != nil {
		b.Fatal(err)
	}
	old := netembed.Mapping{500, 501, 502}

	moved := func(m netembed.Mapping) int {
		n := 0
		for q, r := range m {
			if old[q] != r {
				n++
			}
		}
		return n
	}

	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.SeededRepair(p, old, core.RepairOptions{})
			if res.Mapping == nil {
				b.Fatal("seeded repair found nothing")
			}
			if len(res.Moved) != 1 {
				b.Fatalf("seeded repair moved %d nodes, want 1", len(res.Moved))
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.ECF(p, netembed.Options{MaxSolutions: 1})
			if len(res.Solutions) == 0 {
				b.Fatal("scratch re-embed found nothing")
			}
			if moved(res.Solutions[0]) <= 1 {
				b.Fatalf("scratch re-embed moved %d nodes — the instance no longer separates seeded from scratch", moved(res.Solutions[0]))
			}
		}
	})
}

// BenchmarkOptimize_BnB_vs_Enumerate is the tentpole measurement of the
// optimizing search: finding the cheapest embedding on a 512-node host
// via branch-and-bound (index-strata lower bounds + incumbent pruning)
// versus the only prior way — enumerating every embedding and taking
// the argmin. Both run over identical prebuilt filters (the cached-model
// re-embed regime, as in BenchmarkSearch_FC_vs_Chrono), so the measured
// gap is pure search. The instance plants a cheap solution: the query's
// witness hosts cost 1 while every other host's price grows with its
// ID, so the optimum is the all-witness embedding and the B&B bound
// (cheapest still-live price per unassigned node, read off the sorted
// postings) cuts any prefix that strays onto a priced host almost
// immediately, while the enumerator must still walk the full solution
// set. The acceptance bar is bnb ≥ 5x faster than enumerate.
func BenchmarkOptimize_BnB_vs_Enumerate(b *testing.B) {
	// Private host — prices are stamped on its nodes.
	raw := trace.SyntheticPlanetLab(trace.Config{Sites: 512}, rand.New(rand.NewSource(1)))
	q, witness, err := topo.Subgraph(raw, 16, 32, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	topo.WidenDelayWindows(q, 0.1)

	// Relabel the host so the witness occupies IDs 0..15, then plant the
	// prices: witness hosts cost 1, everything else 10+id. The planted
	// optimum is thereby also first in the search's ascending-ID value
	// order, so the B&B incumbent starts at the optimum and the bound
	// does pure proving work — the regime an operator engineers by
	// seeding optimization with a known-good placement. The enumerator
	// gains nothing from the relabeling: it must walk every embedding
	// regardless of the order they appear in.
	isWitness := make(map[netembed.NodeID]bool, len(witness))
	for _, r := range witness {
		isWitness[r] = true
	}
	order := append([]netembed.NodeID(nil), witness...)
	for i := 0; i < raw.NumNodes(); i++ {
		if !isWitness[netembed.NodeID(i)] {
			order = append(order, netembed.NodeID(i))
		}
	}
	host, _, err := raw.InducedSubgraph(order)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < host.NumNodes(); i++ {
		nd := host.Node(netembed.NodeID(i))
		price := 1.0
		if i >= len(witness) {
			price = float64(10 + i)
		}
		nd.Attrs = nd.Attrs.SetNum("price", price)
	}
	wantCost := float64(len(witness)) // the planted all-witness optimum

	model := netembed.NewModel(host)
	model.EnableIndex(netembed.IndexConfig{})
	g, idx, _ := model.SnapshotIndexed()
	p, err := netembed.NewProblem(q, g, delayWindow, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := core.BuildFilters(p, &netembed.Options{Index: idx})
	obj := core.Objective{Kind: core.ObjectiveAttrCost, Attr: "price"}

	b.Run("n512/bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.ECFWithFilters(f, netembed.Options{
				Optimize:  true,
				Objective: obj,
				Index:     idx,
			})
			if len(res.Solutions) != 1 || res.Cost != wantCost {
				b.Fatalf("bnb cost %v (%d solutions), want planted optimum %v",
					res.Cost, len(res.Solutions), wantCost)
			}
		}
	})
	b.Run("n512/enumerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := netembed.Mapping(nil)
			bestCost := 0.0
			opt := netembed.Options{}
			opt.OnSolution = func(m netembed.Mapping) bool {
				if c := obj.Cost(g, m); best == nil || c < bestCost {
					best = m.Clone()
					bestCost = c
				}
				return true
			}
			core.ECFWithFilters(f, opt)
			if best == nil || bestCost != wantCost {
				b.Fatalf("enumerate argmin %v, want planted optimum %v", bestCost, wantCost)
			}
		}
	})
}

// BenchmarkServePath measures the steady-state HTTP serve path the load
// harness (cmd/netembedload) hammers: a POST /embed round trip through
// the full handler stack — JSON decode, query GraphML decode, engine
// submit, search (or cache hit), JSON encode — against an indexed
// PlanetLab model. Run with -benchmem: allocs/op here is the number the
// CI load gate and the AllocsPerRun regression tests pin.
//
//   - warm: every request is a fresh search (cache disabled) on a warmed
//     process, i.e. the pool-recycled search path.
//   - cached: identical requests served from the model-versioned result
//     cache, i.e. the pure HTTP + cache overhead.
func BenchmarkServePath(b *testing.B) {
	host := planetLab(b)
	q, _, err := topo.Subgraph(host, 8, 12, rand.New(rand.NewSource(15)))
	if err != nil {
		b.Fatal(err)
	}
	queryXML, err := graphml.EncodeString(q)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]interface{}{
		"query":      queryXML,
		"maxResults": 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"warm", "cached"} {
		b.Run(mode, func(b *testing.B) {
			model := netembed.NewModel(host)
			model.EnableIndex(netembed.IndexConfig{})
			svc := netembed.NewService(model, netembed.ServiceConfig{})
			cacheCap := 64
			if mode == "warm" {
				cacheCap = -1 // every request runs a real search
			}
			eng := netembed.NewEngine(svc, netembed.EngineConfig{
				Workers:       2,
				QueueDepth:    64,
				CacheCapacity: cacheCap,
			})
			defer eng.Close(context.Background())
			api := httpapi.NewWithEngine(svc, eng)
			// Warm the process: pools primed, cache filled in cached mode.
			for i := 0; i < 3; i++ {
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("POST", "/embed", bytes.NewReader(body)))
				if rec.Code != 200 {
					b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("POST", "/embed", bytes.NewReader(body)))
				if rec.Code != 200 {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}
